"""The event-loop hot path, split out for optional AOT compilation.

This module holds ``Machine._run_region``'s per-record event loop — the
single hottest code in the simulator (every heap event, every chained
record dispatch, and both columnar bulk arms flow through
:func:`run_event_loop`).  It is deliberately written in the
mypyc/Cython-compilable subset of Python so the ``[speed]`` install
extra can AOT-compile it (see :mod:`repro.sim.engine` for how the
compiled twin is selected and ``REPRO_NO_COMPILED_ENGINE=1`` kills it):

* one module-level function, no closures over loop-mutated state — all
  shared state flows through ``machine`` attributes and the per-CPU
  hoist tuples built by ``_run_region``;
* explicit int/float/tuple locals in the dispatch arms; no dynamic
  class creation, decorators, or metaclass tricks;
* cross-object work (rewinds, latches, batch journals, epoch
  commit/finish) calls back into ``Machine`` methods — those paths are
  cold, and keeping them in ``machine.py`` keeps this module small
  enough to compile quickly.

The pure-Python file is the *reference implementation*: the compiled
build is generated from this exact source at install time, so the two
cannot drift, and byte-identity of every statistic between them is
enforced by tests, the fuzz ``--engine`` axis, and CI artifact ``cmp``.

The loop itself: record dispatchers return the CPU's next event time
(or None when blocked/rescheduled); the loop either queues it or — for
epochs under compiled dispatch — *chains*: when the next event would be
the very next heap pop anyway ((time, cpu) sorts before the heap top),
the next record is processed in-line, skipping the push/pop round-trip.
The canonical event order is unchanged by construction.  The per-event
dispatch (formerly a ``_step_cpu`` method) is merged into the loop: one
Python frame per heap event was measurable at this event rate.
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush

from ..core.accounting import Category
from ..core.epoch import EpochStatus
from ..memory.columnar import resolve_loads, resolve_stores
from ..memory.l2 import COMMITTED
from ..trace.compile import MEM as CK_MEM
from ..trace.events import Rec
from .timeline import STALL_BEGIN, SUBTHREAD_START

# Category keys hoisted to module level for the per-record hot paths.
_BUSY = Category.BUSY
_MISS = Category.MISS
_OVERHEAD = Category.OVERHEAD
_RUNNING = EpochStatus.RUNNING


def run_event_loop(machine, spec_dispatch):
    """Drain one region's event heap until every epoch has committed.

    ``machine`` is the owning :class:`repro.sim.machine.Machine`;
    ``_run_region`` has already scheduled the region's first epochs and
    (under ``spec_dispatch``) built the per-CPU hoist tuples.  Reads
    ``machine._region_remaining`` fresh each iteration — epoch commits
    mutate it through ``_finish_epoch``.
    """
    heap = machine._heap
    cpus = machine.cpus
    heappop = heapq.heappop
    invariants = machine._invariants
    engine = machine.engine
    while machine._region_remaining > 0:
        if not heap:
            machine._break_deadlock()
            continue
        now, cpu_idx, version = heappop(heap)
        cpu = cpus[cpu_idx]
        if version != cpu.event_version:
            continue  # superseded by a rewind/wake
        journal = cpu.journal
        if journal.epoch is not None:
            # The only valid event while a batch is in flight is its
            # own completion (a rewind bumps the version *and*
            # disarms the journal first): the batch survived.
            journal.epoch = None
        epoch = cpu.epoch
        if epoch is None or epoch.status != _RUNNING:
            continue
        if now > machine.now:
            machine.now = now
            machine._proc_max_idx = cpu_idx
        elif cpu_idx > machine._proc_max_idx:
            machine._proc_max_idx = cpu_idx
        if not spec_dispatch:
            # Single-dispatch body (speculative_batches off, or no
            # compiled region): one record per heap event, no
            # chaining, no journals — the comparison baseline.
            if invariants is not None:
                invariants.on_step(machine)
            records = epoch.records
            cursor = epoch.cursor
            if cursor >= epoch.n_records:  # inline epoch.done
                machine._finish_epoch(cpu, epoch, now)
                continue
            # Sub-thread start policy (between records).  Non-
            # speculative epochs never open sub-threads, so skip the
            # engine call for them; under fixed spacing the distance
            # check needs no policy call either (the engine's own
            # first test is the same comparison).
            if epoch.speculative:
                spacing = machine._subthread_spacing
                if (
                    spacing is None
                    or epoch.instrs_since_checkpoint >= spacing
                ) and (
                    len(epoch.subthreads) < machine._max_subthreads
                ) and engine.maybe_start_subthread(epoch, now):
                    machine._emit(now, SUBTHREAD_START, epoch)
                    cost = machine._subthread_start_cost
                    if cost:
                        epoch.accrue(Category.OVERHEAD, cost)
                        machine._schedule(cpu, now + cost)
                        continue
            handled = False
            t_next = None
            compiled = epoch.compiled
            if compiled is not None:
                entry = compiled[cursor]
                if entry is not None:
                    if entry[0] == CK_MEM:
                        handled = True
                        rec = records[cursor]
                        if rec[0] == Rec.LOAD:
                            t_next = machine._do_load_fast(
                                cpu, epoch, rec, entry[1], now
                            )
                        else:
                            t_next = machine._do_store_fast(
                                cpu, epoch, rec, entry[1], now
                            )
                    elif not epoch.speculative and epoch.offset == 0:
                        # Super-records run only for non-speculative
                        # epochs here; journaled speculative batches
                        # require spec_dispatch.
                        handled = True
                        t_next = machine._do_batch(cpu, epoch, entry, now)
            if not handled:
                rec = records[cursor]
                kind = rec[0]
                if kind == Rec.COMPUTE:
                    t_next = machine._do_compute(
                        cpu, epoch, rec[1], Category.BUSY, now
                    )
                elif kind == Rec.TLS_OVERHEAD:
                    t_next = machine._do_compute(
                        cpu, epoch, rec[1], Category.OVERHEAD, now
                    )
                elif kind == Rec.OP:
                    cycles = cpu.pipeline.op_cycles(rec[1], rec[2])
                    # epoch.retire + epoch.accrue, inlined.
                    epoch.instrs_since_checkpoint += rec[2]
                    cp = epoch.subthreads[-1]
                    cp.instructions += rec[2]
                    cp.pending.cycles[_BUSY] += cycles
                    epoch.cursor = cursor + 1
                    t_next = now + cycles
                elif kind == Rec.BRANCH:
                    cycles = cpu.pipeline.branch_cycles(rec[1], rec[2])
                    epoch.instrs_since_checkpoint += 1
                    cp = epoch.subthreads[-1]
                    cp.instructions += 1
                    cp.pending.cycles[_BUSY] += cycles
                    epoch.cursor = cursor + 1
                    t_next = now + cycles
                elif kind == Rec.LOAD:
                    machine._do_load(cpu, epoch, rec, now)
                elif kind == Rec.STORE:
                    machine._do_store(cpu, epoch, rec, now)
                elif kind == Rec.LATCH_ACQ:
                    machine._do_latch_acquire(cpu, epoch, rec, now)
                elif kind == Rec.LATCH_REL:
                    machine._do_latch_release(cpu, epoch, rec, now)
                else:
                    raise ValueError(f"unknown record kind {kind}")
            if t_next is not None:
                cpu.event_version += 1
                _heappush(heap, (t_next, cpu_idx, cpu.event_version))
            continue
        # -- Chained compiled dispatch ------------------------------
        # Chaining is safe for any epoch: the chain condition at the
        # bottom admits only events that would be the very next heap
        # pop, so the canonical event order is preserved — no other
        # CPU processes anything between chained steps.  Everything
        # the per-record dispatchers rebind per call is hoisted here
        # once per heap event and stays live across the chain; the
        # two mutation points that can invalidate a binding rebind
        # (sub-thread checkpoints) or break the chain (rewinds of
        # this epoch) explicitly.  The record bodies mirror
        # _do_load_fast / _do_store_fast / _do_compute and the
        # interpreted OP/BRANCH arms byte for byte.
        records = epoch.records
        n_records = epoch.n_records
        compiled = epoch.compiled
        speculative = epoch.speculative
        order = epoch.order
        cp = epoch.subthreads[-1]
        pending = cp.pending.cycles
        if speculative:
            su = epoch.store_union
            sm = cp.store_mask
            ctx = cp.ctx
            subidx = cp.index
            want = order
        else:
            su = sm = None
            ctx = None
            subidx = -1
            want = COMMITTED
        (observer, overlap, load_policies, spacing_cfg, slice_limit,
         max_subthreads, start_cost, banks_reserve, chan_reserve,
         l2_lat, mem_lat, l2_load, l2_store, sync_waiters, msys, vp,
         banks, bank_shift, bank_mask, bank_free, bank_occ,
         line_versions, l2_sets, l2_set_shift, l2_set_mask, ctx_lines,
         pipeline, l1, width, penalty, other_l1s, elt_update,
         l1_resident, l1_sets, l1_shift, l1_mask, l1_notified,
         other_resident,
         ) = cpu.hoist
        # Columnar bulk dispatch is gated per region: the machine-
        # level gates (config + per-load policies) plus the observer
        # and invariant hooks, which demand per-record callbacks the
        # bulk passes would skip.
        columnar_on = (
            machine._columnar and observer is None
            and invariants is None
        )
        columnar_stores_on = (
            machine._columnar_stores and observer is None
            and invariants is None
        )
        while True:
            if invariants is not None:
                invariants.on_step(machine)
            cursor = epoch.cursor
            if cursor >= n_records:  # inline epoch.done
                machine._finish_epoch(cpu, epoch, now)
                break
            if speculative and (
                spacing_cfg is None
                or epoch.instrs_since_checkpoint >= spacing_cfg
            ) and (
                # The policy's own first tests, hoisted: skip the
                # call once the sub-thread budget is exhausted.
                len(epoch.subthreads) < max_subthreads
            ) and engine.maybe_start_subthread(epoch, now):
                machine._emit(now, SUBTHREAD_START, epoch)
                if start_cost:
                    epoch.accrue(Category.OVERHEAD, start_cost)
                    machine._schedule(cpu, now + start_cost)
                    break
                # A checkpoint opened between records: rebind the
                # sub-thread locals before dispatching the record.
                cp = epoch.subthreads[-1]
                pending = cp.pending.cycles
                sm = cp.store_mask
                ctx = cp.ctx
                subidx = cp.index
            rec = records[cursor]
            kind = rec[0]
            entry = compiled[cursor]
            t_next = None
            if (
                columnar_on and kind == Rec.LOAD
                and entry is not None and len(entry) == 4
                and not cpu.sync_skip
            ):
                # Columnar bulk resolution (repro.memory.columnar):
                # the record opens (or continues) a compiled run of
                # single-line loads.  Commit the run's bulk-eligible
                # prefix — L1-resident hits needing no L2/engine/bank
                # interaction — in one call; each costs exactly one
                # cycle with no stall, so m accesses complete at
                # now + m.  The residue record (first miss/exposed
                # load) falls through to the scalar path next
                # iteration.
                block = entry[2]
                max_n = len(block[0]) - entry[3]
                if speculative and (
                    len(epoch.subthreads) < max_subthreads
                ):
                    # The between-records checkpoint test must stay
                    # unreachable inside the bulk.  Under adaptive
                    # spacing the engine policy runs every record, so
                    # bulk stands down entirely.
                    if spacing_cfg is None:
                        max_n = 0
                    else:
                        room = (
                            spacing_cfg
                            - epoch.instrs_since_checkpoint
                        )
                        if room < max_n:
                            max_n = room
                if max_n >= 2 and heap:
                    # Every intermediate completion must beat the
                    # heap top under the (time, cpu) tie-break,
                    # exactly like the chain test at the bottom.
                    top = heap[0]
                    cand = int(top[0] - now) + 1
                    if cand < max_n:
                        max_n = cand
                    if max_n >= 2:
                        last = now + max_n - 1
                        if last > top[0] or (
                            last == top[0] and cpu_idx > top[1]
                        ):
                            max_n -= 1
                m = 0
                if max_n >= 2:
                    m = resolve_loads(
                        block, entry[3], max_n, l1_resident,
                        l1_notified, su, l1_sets, l1_shift, l1_mask,
                    )
                if m:
                    l1.hits += m
                    epoch.instrs_since_checkpoint += m
                    cp.instructions += m
                    pending[_BUSY] += m
                    machine._fast_loads += m
                    machine._col_batches += 1
                    machine._col_accesses += m
                    epoch.cursor = cursor + m
                    t_next = now + m
                else:
                    machine._col_residue += 1
            elif (
                columnar_stores_on and kind == Rec.STORE
                and entry is not None and len(entry) == 4
            ):
                # Columnar bulk store resolution: the record opens
                # (or continues) a compiled run of single-line
                # private-line stores.  Commit the run's bulk-
                # eligible prefix — stores hitting an epoch-owned L2
                # version on a line resident only in this L1, needing
                # no install/invalidate/violation work — in one call;
                # like the scalar write-through path each store costs
                # exactly one cycle with no stall, so m stores
                # complete at now + m (each reserving its bank at its
                # own cycle).  The residue record falls through to
                # the scalar path next iteration.
                block = entry[2]
                max_n = len(block[0]) - entry[3]
                if speculative and (
                    len(epoch.subthreads) < max_subthreads
                ):
                    # Same checkpoint-unreachability clamp as the
                    # load arm.
                    if spacing_cfg is None:
                        max_n = 0
                    else:
                        room = (
                            spacing_cfg
                            - epoch.instrs_since_checkpoint
                        )
                        if room < max_n:
                            max_n = room
                if max_n >= 2 and heap:
                    top = heap[0]
                    cand = int(top[0] - now) + 1
                    if cand < max_n:
                        max_n = cand
                    if max_n >= 2:
                        last = now + max_n - 1
                        if last > top[0] or (
                            last == top[0] and cpu_idx > top[1]
                        ):
                            max_n -= 1
                m = 0
                if max_n >= 2:
                    m = resolve_stores(
                        block, entry[3], max_n, l1_resident,
                        other_resident, line_versions, want,
                        l2_sets, l2_set_shift, l2_set_mask,
                        l1_sets, l1_shift, l1_mask,
                        sm, su, ctx, subidx, ctx_lines,
                        l1._spec_tags, banks_reserve, now,
                    )
                if m:
                    machine.l2.hits += m
                    epoch.instrs_since_checkpoint += m
                    cp.instructions += m
                    pending[_BUSY] += m
                    machine._fast_stores += m
                    machine._private_stores += m
                    machine._col_store_batches += 1
                    machine._col_store_accesses += m
                    epoch.cursor = cursor + m
                    t_next = now + m
                else:
                    machine._col_store_residue += 1
            if t_next is not None:
                pass  # columnar bulk committed; straight to chaining
            elif entry is not None and entry[0] == CK_MEM:
                if kind == Rec.LOAD:
                    # _do_load_fast, inlined against the hoisted
                    # locals.
                    pc = rec[3]
                    if cpu.sync_skip:
                        cpu.sync_skip = False
                    elif load_policies:
                        if engine.maybe_start_predictor_subthread(
                            epoch, pc, now
                        ):
                            machine._emit(
                                now, SUBTHREAD_START, epoch,
                                detail="predictor",
                            )
                            if start_cost:
                                epoch.accrue(
                                    Category.OVERHEAD, start_cost
                                )
                                machine._schedule(cpu, now + start_cost)
                                break
                            cp = epoch.subthreads[-1]
                            pending = cp.pending.cycles
                            sm = cp.store_mask
                            ctx = cp.ctx
                            subidx = cp.index
                        if engine.should_synchronize_load(epoch, pc):
                            line = entry[1][0][0]
                            cpu.sync_line = line
                            cpu.block_start = now
                            machine._emit(
                                now, STALL_BEGIN, epoch, detail="sync"
                            )
                            cpu.event_version += 1
                            sync_waiters.setdefault(line, []).append(
                                cpu_idx
                            )
                            break
                    epoch.instrs_since_checkpoint += 1
                    cp.instructions += 1
                    if observer is not None:
                        observer.on_op(
                            epoch, Rec.LOAD, rec[1], rec[2], pc
                        )
                    machine._fast_loads += 1
                    stall = 0.0
                    if not speculative:
                        for (line, _sub_addr, _mask, load_bits,
                             _private) in entry[1]:
                            if line in l1_resident:
                                # l1.access hit, inlined: bump the
                                # counter and refresh LRU order.
                                l1.hits += 1
                                order_l = l1_sets[
                                    (line >> l1_shift) & l1_mask
                                ]._order
                                if order_l[-1] != line:
                                    order_l.remove(line)
                                    order_l.append(line)
                                continue
                            l1.misses += 1
                            hit, result = l2_load(
                                line, order, None, False, load_bits
                            )
                            if hit:
                                # banks.reserve + L2 latency, inlined
                                # (pow2 bank selection; the generic
                                # fallback keeps the method call).
                                if bank_mask is not None:
                                    bank = (
                                        line >> bank_shift
                                    ) & bank_mask
                                    s = bank_free[bank]
                                    if now > s:
                                        s = now
                                    else:
                                        banks.contention_cycles += (
                                            s - now
                                        )
                                    bank_free[bank] = s + bank_occ
                                    banks.accesses += 1
                                    ready = s + l2_lat
                                else:
                                    ready = (
                                        banks_reserve(line, now)
                                        + l2_lat
                                    )
                            else:
                                ready = chan_reserve(
                                    banks_reserve(line, now) + l2_lat
                                ) + mem_lat
                                if result.memory_accesses > 1:
                                    for _ in range(
                                        result.memory_accesses - 1
                                    ):
                                        msys.extra_memory_transfer(now)
                                if result.invalidated_lines:
                                    machine._apply_inclusion(
                                        result.invalidated_lines
                                    )
                            if overlap:
                                if (
                                    len(cpu.outstanding)
                                    >= machine._mshr_entries
                                ):
                                    oldest_ready, _ = (
                                        cpu.outstanding.pop(0)
                                    )
                                    if oldest_ready - now > stall:
                                        stall = oldest_ready - now
                                cpu.outstanding.append((
                                    ready,
                                    pipeline.instructions_retired,
                                ))
                            elif ready - now > stall:
                                stall = ready - now
                            l1.fill(line, spec=False, subidx=-1)
                    else:
                        for (line, sub_addr, mask, load_bits,
                             _private) in entry[1]:
                            if line in l1_resident:
                                # l1.access + is_notified +
                                # mark_spec, inlined: one dict chain
                                # to the L1Line instead of three
                                # lookups through method calls.
                                l1.hits += 1
                                cset = l1_sets[
                                    (line >> l1_shift) & l1_mask
                                ]
                                order_l = cset._order
                                if order_l[-1] != line:
                                    order_l.remove(line)
                                    order_l.append(line)
                                lobj = cset._by_tag[line]
                                if not lobj.notified:
                                    written = su.get(line)
                                    if written is None or (
                                        mask & ~written
                                    ):
                                        exposed = True
                                        if vp and (
                                            engine
                                            ._value_prediction_hits(
                                                epoch, sub_addr, pc
                                            )
                                        ):
                                            exposed = False
                                            engine \
                                                .value_predictions_used \
                                                += 1
                                        l2_load(
                                            line, order, ctx,
                                            exposed, load_bits,
                                        )
                                        banks_reserve(line, now)
                                        if exposed:
                                            elt_update(line, pc)
                                            lobj.spec = True
                                            if subidx > lobj.subidx:
                                                lobj.subidx = subidx
                                            l1._spec_tags.add(line)
                                            lobj.notified = True
                                            l1_notified.add(line)
                                continue
                            l1.misses += 1
                            written = su.get(line)
                            exposed = written is None or bool(
                                mask & ~written
                            )
                            if exposed and vp and (
                                engine._value_prediction_hits(
                                    epoch, sub_addr, pc
                                )
                            ):
                                exposed = False
                                engine.value_predictions_used += 1
                            hit, result = l2_load(
                                line, order, ctx, exposed, load_bits
                            )
                            if exposed:
                                elt_update(line, pc)
                            if hit:
                                # banks.reserve + L2 latency, inlined.
                                if bank_mask is not None:
                                    bank = (
                                        line >> bank_shift
                                    ) & bank_mask
                                    s = bank_free[bank]
                                    if now > s:
                                        s = now
                                    else:
                                        banks.contention_cycles += (
                                            s - now
                                        )
                                    bank_free[bank] = s + bank_occ
                                    banks.accesses += 1
                                    ready = s + l2_lat
                                else:
                                    ready = (
                                        banks_reserve(line, now)
                                        + l2_lat
                                    )
                            else:
                                ready = chan_reserve(
                                    banks_reserve(line, now) + l2_lat
                                ) + mem_lat
                                if result.memory_accesses > 1:
                                    for _ in range(
                                        result.memory_accesses - 1
                                    ):
                                        msys.extra_memory_transfer(now)
                                if result.invalidated_lines:
                                    machine._apply_inclusion(
                                        result.invalidated_lines
                                    )
                            if overlap:
                                if (
                                    len(cpu.outstanding)
                                    >= machine._mshr_entries
                                ):
                                    oldest_ready, _ = (
                                        cpu.outstanding.pop(0)
                                    )
                                    if oldest_ready - now > stall:
                                        stall = oldest_ready - now
                                cpu.outstanding.append((
                                    ready,
                                    pipeline.instructions_retired,
                                ))
                            elif ready - now > stall:
                                stall = ready - now
                            l1.fill(
                                line, spec=True, subidx=subidx,
                                notified=exposed,
                            )
                    pending[_BUSY] += 1
                    if stall > 0:
                        pending[_MISS] += stall
                    epoch.cursor = cursor + 1
                    t_next = now + 1 + stall
                else:
                    # _do_store_fast, inlined against the hoisted
                    # locals.
                    pc = rec[3]
                    epoch.instrs_since_checkpoint += 1
                    cp.instructions += 1
                    if observer is not None:
                        observer.on_op(
                            epoch, Rec.STORE, rec[1], rec[2], pc
                        )
                    machine._fast_stores += 1
                    self_rewound = False
                    for (line, _sub_addr, words, _load_bits,
                         private) in entry[1]:
                        if speculative:
                            sm[line] = sm.get(line, 0) | words
                            su[line] = su.get(line, 0) | words
                        _hit, result = l2_store(
                            line, order, ctx, words, pc, not private
                        )
                        rewinds = None
                        if result is not None:
                            violations = result.violations
                            overflow = result.overflow_squash
                            if violations or overflow:
                                rewinds = engine._resolve_violations(
                                    violations
                                )
                                if overflow:
                                    rewinds.extend(
                                        engine._resolve_overflow(
                                            overflow
                                        )
                                    )
                        # Write-through: the store reserves bandwidth
                        # but the CPU does not wait for it.
                        if bank_mask is not None:
                            bank = (line >> bank_shift) & bank_mask
                            s = bank_free[bank]
                            if now > s:
                                s = now
                            else:
                                banks.contention_cycles += s - now
                            bank_free[bank] = s + bank_occ
                            banks.accesses += 1
                        else:
                            banks_reserve(line, now)
                        if result is not None:
                            if result.memory_accesses:
                                for _ in range(result.memory_accesses):
                                    msys.extra_memory_transfer(now)
                            if result.invalidated_lines:
                                machine._apply_inclusion(
                                    result.invalidated_lines
                                )
                        for ol1 in other_l1s:
                            if line in ol1.resident:
                                ol1.invalidate(line)
                        if line in l1_resident:
                            # l1.fill on a resident line, inlined
                            # (the common store-after-load case):
                            # LRU touch plus speculative marking.
                            cset = l1_sets[
                                (line >> l1_shift) & l1_mask
                            ]
                            order_l = cset._order
                            if order_l[-1] != line:
                                order_l.remove(line)
                                order_l.append(line)
                            if speculative:
                                lobj = cset._by_tag[line]
                                lobj.spec = True
                                if subidx > lobj.subidx:
                                    lobj.subidx = subidx
                                l1._spec_tags.add(line)
                        else:
                            l1.fill(
                                line, spec=speculative, subidx=subidx
                            )
                        if rewinds:
                            machine._apply_rewinds(rewinds, now)
                            if not self_rewound:
                                for r in rewinds:
                                    if r.epoch is epoch:
                                        self_rewound = True
                                        break
                            if speculative:
                                # A rewind may have truncated the
                                # sub-thread list and replaced the
                                # store-mask union: rebind.
                                cp = epoch.subthreads[-1]
                                pending = cp.pending.cycles
                                sm = cp.store_mask
                                su = epoch.store_union
                                ctx = cp.ctx
                                subidx = cp.index
                        if private:
                            machine._private_stores += 1
                        elif sync_waiters:
                            machine._wake_sync_on_store(line, order, now)
                    if self_rewound:
                        # Squashed mid-record; the rewind already
                        # rescheduled this CPU.
                        break
                    pending[_BUSY] += 1
                    epoch.cursor = cursor + 1
                    t_next = now + 1
            else:
                if entry is not None and epoch.offset == 0:
                    if speculative:
                        # Journaled dispatch; None means the gate
                        # refused (the interpreted path would have
                        # sliced a record or opened a checkpoint
                        # inside the run).
                        t_next = machine._do_batch_spec(
                            cpu, epoch, entry, now, journal
                        )
                    else:
                        t_next = machine._do_batch(cpu, epoch, entry, now)
                if t_next is None:
                    if kind == Rec.COMPUTE or kind == Rec.TLS_OVERHEAD:
                        # _do_compute, inlined.
                        count = rec[1]
                        chunk = count - epoch.offset
                        if speculative:
                            spacing = spacing_cfg
                            if spacing is None:
                                spacing = engine.spacing_for(epoch)
                            if spacing < chunk:
                                chunk = spacing
                            if slice_limit < chunk:
                                chunk = slice_limit
                            if len(epoch.subthreads) < max_subthreads:
                                to_boundary = (
                                    spacing
                                    - epoch.instrs_since_checkpoint
                                )
                                if 0 < to_boundary < chunk:
                                    chunk = to_boundary
                        pipeline.instructions_retired += chunk
                        cycles = (chunk + width - 1) // width
                        mlp_stall = (
                            machine._mlp_stall(cpu, epoch, now)
                            if overlap else 0.0
                        )
                        epoch.instrs_since_checkpoint += chunk
                        cp.instructions += chunk
                        if kind == Rec.COMPUTE:
                            pending[_BUSY] += cycles
                        else:
                            pending[_OVERHEAD] += cycles
                        if mlp_stall:
                            pending[_MISS] += mlp_stall
                            cycles += mlp_stall
                        if epoch.offset + chunk >= count:
                            epoch.cursor = cursor + 1
                            epoch.offset = 0
                        else:
                            epoch.offset += chunk
                        t_next = now + cycles
                    elif kind == Rec.OP:
                        cycles = pipeline.op_cycles(rec[1], rec[2])
                        epoch.instrs_since_checkpoint += rec[2]
                        cp.instructions += rec[2]
                        pending[_BUSY] += cycles
                        epoch.cursor = cursor + 1
                        t_next = now + cycles
                    elif kind == Rec.BRANCH:
                        # pipeline.branch_cycles, inlined.
                        pipeline.instructions_retired += 1
                        if pipeline.predictor.predict_and_update(
                            rec[1], rec[2]
                        ):
                            cycles = 1
                        else:
                            cycles = 1 + penalty
                        epoch.instrs_since_checkpoint += 1
                        cp.instructions += 1
                        pending[_BUSY] += cycles
                        epoch.cursor = cursor + 1
                        t_next = now + cycles
                    elif kind == Rec.LATCH_ACQ:
                        machine._do_latch_acquire(cpu, epoch, rec, now)
                        break
                    elif kind == Rec.LATCH_REL:
                        machine._do_latch_release(cpu, epoch, rec, now)
                        break
                    else:
                        raise ValueError(
                            f"unknown record kind {kind}"
                        )
            if t_next is None:
                break  # blocked, squashed, or rescheduled elsewhere
            if heap:
                top = heap[0]
                if t_next > top[0] or (
                    t_next == top[0] and cpu_idx > top[1]
                ):
                    cpu.event_version += 1
                    _heappush(
                        heap, (t_next, cpu_idx, cpu.event_version)
                    )
                    break
            # Our next event would be the very next pop: process it
            # in-line instead of a push/pop round-trip.
            if t_next > machine.now:
                machine.now = t_next
                machine._proc_max_idx = cpu_idx
            elif cpu_idx > machine._proc_max_idx:
                machine._proc_max_idx = cpu_idx
            now = t_next
            if journal.epoch is not None:
                journal.epoch = None  # batch completed in-line
            continue
