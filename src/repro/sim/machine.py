"""The simulated chip-multiprocessor.

``Machine`` replays a :class:`~repro.trace.events.WorkloadTrace` on a CMP
of ``n_cpus`` cores with private write-through L1s and a shared
speculative L2, under the TLS protocol implemented by
:class:`~repro.core.engine.TLSEngine`.

The simulation is discrete-event: a global heap orders per-CPU "next
record" events by cycle, so every memory reference, latch operation, and
violation is processed in global time order.  Events at the same cycle
are processed in CPU-index order — a canonical tie-break independent of
scheduling history, so replaying a trace through the compiled fast path
(:mod:`repro.trace.compile`) interleaves CPUs identically to the
per-record interpreted path.  COMPUTE batches advance a CPU's clock many
cycles at once without interacting with other CPUs.

Scheduling model: a parallel region's epochs are assigned to CPUs in
logical order, round-robin; a CPU picks up the next unstarted epoch only
after its current epoch commits (its L1 and its hardware thread contexts
hold that epoch's state until then).  Serial segments run on CPU 0 while
the other CPUs idle.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..core.accounting import Category, CycleCounters
from ..core.engine import RewindAction, TLSEngine
from ..core.epoch import EpochExecution, EpochStatus
from ..core.latches import LatchTable
from ..cpu.pipeline import CorePipeline
from ..memory.l1 import L1Cache
from ..memory.l2 import SpeculativeL2
from ..memory.timing import MemorySystemTiming
from ..trace.compile import (
    compile_region,
    memo_get,
    memo_put,
)
from ..trace.events import (
    EpochTrace,
    ParallelRegion,
    Rec,
    SerialSegment,
    WorkloadTrace,
)
from .config import MachineConfig
from .engine import select_engine_core
from .stats import SimulationStats
from .timeline import (
    COMMIT,
    EPOCH_START,
    FINISH,
    STALL_BEGIN,
    STALL_END,
    SUBTHREAD_START,
    VIOLATION,
    TimelineEvent,
)

# Category keys hoisted to module level for the per-record hot paths.
_BUSY = Category.BUSY
_MISS = Category.MISS
_OVERHEAD = Category.OVERHEAD


class _BatchJournal:
    """Rewind journal for one in-flight speculative super-record.

    Armed at dispatch (``epoch`` set), disarmed when the completion
    event pops or a squash restores it.  One per CPU, reused across
    dispatches — at most one batch is ever in flight per CPU.
    """

    __slots__ = (
        "epoch",       # EpochExecution while armed, else None
        "start",       # record cursor at dispatch
        "start_time",  # dispatch cycle
        "steps",       # per-record (instrs, cycles, is_overhead, branch)
        "instrs",      # total instructions charged at dispatch
        "busy",        # busy cycles charged (incl. dynamic penalties)
        "overhead",    # overhead cycles charged
        "pred_snap",   # predictor scalar snapshot (journal())
        "pred_log",    # predictor counter undo log, reused list
    )

    def __init__(self):
        self.epoch = None
        self.start = 0
        self.start_time = 0.0
        self.steps = ()
        self.instrs = 0
        self.busy = 0
        self.overhead = 0
        self.pred_snap = None
        self.pred_log = []


class _CPU:
    """Per-core simulation state."""

    __slots__ = (
        "index",
        "pipeline",
        "l1",
        "epoch",
        "event_version",
        "blocked_latch",
        "block_start",
        "sync_line",
        "sync_skip",
        "totals",
        "outstanding",
        "retired_at_oldest_miss",
        "journal",
        "hoist",
    )

    def __init__(self, index: int, config: MachineConfig):
        self.index = index
        self.journal = _BatchJournal()
        self.pipeline = CorePipeline(config.pipeline)
        self.l1 = L1Cache(config.l1_geometry())
        self.epoch: Optional[EpochExecution] = None
        self.event_version = 0
        self.blocked_latch: Optional[int] = None
        self.block_start = 0.0
        #: Line this CPU's load is synchronizing on (predicted-violating
        #: load policy), or None.
        self.sync_line: Optional[int] = None
        #: Skip the synchronization check once (set when woken).
        self.sync_skip = False
        self.totals = CycleCounters()
        #: Outstanding load-miss completion times (overlap_loads mode),
        #: oldest first, paired with the retired-instruction count when
        #: each miss was issued.
        self.outstanding: List[Tuple[float, int]] = []
        self.retired_at_oldest_miss = 0
        #: Per-region tuple of hot dispatch bindings (chained compiled
        #: dispatch); rebuilt by _run_region, unpacked once per event.
        self.hoist: Optional[tuple] = None


class Machine:
    """A simulated CMP executing one workload trace."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 record_events: bool = False, observer=None,
                 tracer=None):
        self.config = config or MachineConfig()
        #: Timeline events (see repro.sim.timeline); empty unless
        #: record_events is True — recording costs time and memory.
        self.record_events = record_events
        self.events: List[TimelineEvent] = []
        #: Optional commit-log observer (repro.verify.observer): receives
        #: on_epoch_start / on_op / on_rewind / on_commit callbacks.
        self.observer = observer
        #: Optional repro.obs.tracer.SpanTracer.  Only segment/compile
        #: granularity is traced — never the per-record hot loop — and
        #: every producer site is guarded by ``tracer is not None``, so
        #: an untraced run executes the original code path.
        self.tracer = tracer
        self._invariants = None
        if self.config.check_invariants:
            # Imported lazily: repro.verify imports repro.sim.
            from ..verify.invariants import InvariantChecker

            self._invariants = InvariantChecker(
                interval=self.config.invariant_interval
            )
        self.l2 = SpeculativeL2(
            geometry=self.config.l2_geometry(),
            directory=None,  # bound to the engine below
            victim_entries=self.config.victim_entries,
            line_granularity_loads=self.config.tls.line_granularity_loads,
        )
        self.engine = TLSEngine(
            l2=self.l2, n_cpus=self.config.n_cpus, config=self.config.tls
        )
        self.l2.directory = self.engine
        self.msys = MemorySystemTiming(
            l2_banks=self.config.l2_banks,
            l2_bank_occupancy=self.config.l2_bank_occupancy,
            line_size=self.config.line_size,
            l2_latency=self.config.l2_latency,
            memory_latency=self.config.memory_latency,
            memory_gap=self.config.memory_gap,
        )
        self.latches = LatchTable()
        self.cpus = [_CPU(i, self.config) for i in range(self.config.n_cpus)]
        #: line address -> CPU indices whose predicted-violating load is
        #: waiting for an earlier epoch's store to that line.
        self._sync_waiters: Dict[int, List[int]] = {}
        #: Overflow-squash stall state.  An epoch whose speculative
        #: state overflows the L2 is fully squashed and normally retried
        #: after the violation penalty; if it overflows *again* without
        #: the commit horizon having advanced, retrying immediately is
        #: futile (the cache pressure that evicted it is still there)
        #: and a population of thrashing epochs can starve the homefree
        #: epoch's memory accesses almost indefinitely.  Repeat
        #: offenders are parked here (cpu index -> (epoch, restart
        #: cycle)) and woken when the commit horizon next advances.
        self._overflow_parked: Dict[int, Tuple] = {}
        #: epoch order -> commit horizon at that epoch's last overflow.
        self._overflow_seen: Dict[int, int] = {}
        self.now = 0.0
        #: (cycle, cpu_index, event_version) — ties resolve by CPU index.
        self._heap: List[Tuple[float, int, int]] = []
        self._epochs_total = 0
        self._deadlock_breaks = 0
        # Hot-loop constants hoisted out of the per-record dispatch; the
        # config is immutable for the lifetime of a Machine.
        tls = self.config.tls
        self._overlap_loads = self.config.overlap_loads
        self._mshr_entries = self.config.mshr_entries
        self._subthread_start_cost = tls.subthread_start_cost
        #: Either per-load predictor policy enabled?  When False the
        #: predictor/synchronization checks are skipped entirely on the
        #: load fast path (both always return False in that case).
        self._load_policies = (
            tls.predictor_subthreads or tls.sync_predicted_loads
        )
        #: Fixed sub-thread spacing, or None under adaptive spacing (the
        #: per-epoch spacing then requires the engine's policy call).
        self._subthread_spacing = (
            None if tls.adaptive_spacing else tls.subthread_spacing
        )
        self._value_predict = tls.value_predict_loads
        self._spec_slice_limit = tls.spec_slice_limit
        self._max_subthreads = tls.max_subthreads
        # Memory-timing fast path: the composed MemorySystemTiming calls
        # decompose into bank/channel reservations plus fixed latencies;
        # binding the pieces here lets the per-line loops inline the
        # arithmetic (see timing.py for the composed reference forms).
        self._banks_reserve = self.msys.banks.reserve
        self._chan_reserve = self.msys.channel.reserve
        self._l2_lat = self.msys.l2_latency
        self._mem_lat = self.msys.memory_latency
        #: The other CPUs' L1s, per CPU (write-invalidate walk).
        self._other_l1s = [
            [o.l1 for o in self.cpus if o is not c] for c in self.cpus
        ]
        # Trace compilation (repro.trace.compile): per-region lowered
        # entry lists, keyed by trace object identity.
        self._compile_enabled = self.config.compile_traces
        #: Everything the compiled entries depend on besides the records
        #: themselves.  Compilations are cached on the segment objects so
        #: repeated runs of the same trace (figure sweeps, benchmarks)
        #: skip recompilation; a key mismatch forces a fresh compile.
        self._compile_key = (
            self.config.line_size,
            self.l2.word_size,
            self.l2.line_granularity_loads,
            self.config.pipeline,
            not self._overlap_loads,
        )
        self._region_compiled: Optional[Dict[int, list]] = None
        #: Regions whose lowered entries came out of a cache (the
        #: process-wide memo or the segment-attached dict) instead of
        #: being recompiled.
        self._compile_reuses = 0
        self._batched_records = 0
        self._fast_loads = 0
        self._fast_stores = 0
        self._private_stores = 0
        #: Speculative dispatch machinery (journaled batches + chained
        #: in-order dispatch); requires compiled traces.
        self._spec_dispatch = (
            self._compile_enabled and self.config.speculative_batches
        )
        self._spec_batches = 0
        self._batch_squashes = 0
        #: Columnar bulk resolution of compiled load runs
        #: (repro.memory.columnar).  Rides on the chained dispatch loop;
        #: the per-load policies make every load a stateful engine call,
        #: which the bulk path cannot replicate, so they force scalar.
        #: Observer/invariant gates are per-region (they can be attached
        #: after construction).
        self._columnar = (
            self._spec_dispatch and self.config.columnar
            and not self._load_policies
        )
        self._col_batches = 0
        self._col_accesses = 0
        self._col_residue = 0
        #: Columnar bulk resolution of compiled private-store runs
        #: (repro.memory.columnar.resolve_stores).  Same dispatch
        #: requirements as the load kernel, gated independently
        #: (``columnar_stores``) so the two kernels form separate
        #: differential-testing axes.
        self._columnar_stores = (
            self._spec_dispatch and self.config.columnar_stores
            and not self._load_policies
        )
        self._col_store_batches = 0
        self._col_store_accesses = 0
        self._col_store_residue = 0
        #: The event-loop core (repro.sim.engine): the AOT-compiled
        #: twin of sim/engine_core.py when built and not killed by
        #: ``REPRO_NO_COMPILED_ENGINE=1``, else the pure-Python
        #: reference module.  Both execute the identical source, so
        #: selection is invisible to every statistic.
        self._engine_core = select_engine_core()
        #: Highest CPU index that processed an event at the current
        #: cycle (reset per region) — _restore_batch_journal's replay
        #: needs it to place same-cycle journal steps against the
        #: violator in canonical interpreted order.
        self._proc_max_idx = -1
        # A squash must restore any in-flight batch journal *before*
        # the epoch state is rewound (the journal corrections feed the
        # Failed-cycle attribution the rewind captures).
        self.engine.pre_rewind = self._restore_batch_journal
        #: Metrics snapshot taken after functional warming (see
        #: :meth:`functional_warm`), subtracted by ``_collect_stats`` so
        #: a warmed run reports only measured-phase counters.
        self._warm_metrics: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def functional_warm(self, workload: WorkloadTrace) -> None:
        """Replay a warmup prefix *un-timed* into the machine state.

        SMARTS-style functional warming for the trace sampler
        (:mod:`repro.trace.sampling`): loads, stores, and branches
        update the L1s, the shared L2 (committed, non-speculative
        path), and the branch predictors — but no engine events are
        scheduled and the clock does not advance, so a subsequent
        :meth:`run` starts at cycle 0 against warm caches, exactly as
        the measured transactions would have found them mid-workload.

        Epochs are replayed on the CPUs they would run on (logical
        order, round-robin over the region width) so each private L1
        warms with its own epochs' lines; stores walk the other L1s'
        invalidations like the timed write-through path does.  Counter
        pollution from warming (L1/L2 hit/miss tallies, predictor
        updates) is snapshotted and subtracted in ``_collect_stats``.
        """
        width = self._region_width()
        l2 = self.l2
        lines_touched = l2.geom.lines_touched
        for txn in workload.transactions:
            for segment in txn.segments:
                if isinstance(segment, SerialSegment):
                    assignments = [(0, segment.records)]
                elif isinstance(segment, ParallelRegion):
                    assignments = [
                        (i % width, e.records)
                        for i, e in enumerate(segment.epochs)
                    ]
                else:
                    raise TypeError(f"unknown segment {segment!r}")
                for cpu_idx, records in assignments:
                    cpu = self.cpus[cpu_idx]
                    l1 = cpu.l1
                    predictor = cpu.pipeline.predictor
                    others = self._other_l1s[cpu_idx]
                    for rec in records:
                        kind = rec[0]
                        if kind == Rec.LOAD:
                            addr, size = rec[1], rec[2]
                            for tag in lines_touched(addr, size):
                                if not l1.access(tag):
                                    l1.fill(tag, spec=False)
                            l2.load(addr, size, -1, None, False)
                        elif kind == Rec.STORE:
                            addr, size = rec[1], rec[2]
                            for tag in lines_touched(addr, size):
                                if not l1.access(tag):
                                    l1.fill(tag, spec=False)
                                for other in others:
                                    other.invalidate(tag)
                            l2.store(addr, size, -1, None)
                        elif kind == Rec.BRANCH:
                            predictor.predict_and_update(rec[1], rec[2])
        self._warm_metrics = self.metrics().snapshot()

    def run(self, workload: WorkloadTrace) -> SimulationStats:
        """Replay the workload; returns the aggregated statistics."""
        tracer = self.tracer
        # Traces materialized through the harness cache carry their
        # spec_key; together with the segment ordinal it names a region's
        # records process-wide (repro.trace.compile.REGION_MEMO).
        content_key = getattr(workload, "content_key", None)
        ordinal = 0
        for txn in workload.transactions:
            for segment in txn.segments:
                if isinstance(segment, SerialSegment):
                    kind = "serial"
                    epochs = [
                        EpochTrace(epoch_id=-1, records=segment.records)
                    ]
                elif isinstance(segment, ParallelRegion):
                    kind = "parallel"
                    epochs = segment.epochs
                else:
                    raise TypeError(f"unknown segment {segment!r}")
                token = (
                    None if content_key is None
                    else (content_key, ordinal)
                )
                ordinal += 1
                if tracer is not None:
                    with tracer.span(
                        "machine.segment", kind=kind, epochs=len(epochs)
                    ):
                        self._run_region(
                            epochs, cache_host=segment, memo_token=token
                        )
                else:
                    self._run_region(
                        epochs, cache_host=segment, memo_token=token
                    )
        if self._invariants is not None:
            self._invariants.on_finish(self)
        return self._collect_stats()

    # ------------------------------------------------------------------
    # Region orchestration
    # ------------------------------------------------------------------

    def _region_width(self) -> int:
        width = self.config.region_cpus or self.config.n_cpus
        return max(1, min(width, self.config.n_cpus))

    def _run_region(self, epoch_traces: List[EpochTrace],
                    cache_host=None, memo_token=None) -> None:
        if not epoch_traces:
            return
        if self._compile_enabled:
            # Compilations are pure functions of (records, compile key),
            # looked up through two caches: the process-wide region memo
            # keyed by (trace content key, segment ordinal, compile key)
            # — shared across Machine instances and inherited copy-on-
            # write by forked harness workers — and a per-segment dict
            # keyed by compile key for traces without a content key
            # (inline/synthesized).  The entries are cached positionally
            # — the serial pseudo-EpochTrace is recreated per run, so an
            # id-keyed cache would never hit.
            per_epoch = None
            token = None
            if memo_token is not None:
                token = (memo_token[0], memo_token[1], self._compile_key)
                per_epoch = memo_get(token)
            host_cache = None
            if cache_host is not None:
                host_cache = getattr(cache_host, "_compile_cache", None)
                if per_epoch is None and host_cache is not None:
                    per_epoch = host_cache.get(self._compile_key)
            if per_epoch is None:
                if self.tracer is not None:
                    with self.tracer.span(
                        "machine.compile", epochs=len(epoch_traces)
                    ):
                        per_epoch = compile_region(
                            epoch_traces, self.l2, self.config.pipeline,
                            batches=not self._overlap_loads,
                        ).epochs
                else:
                    per_epoch = compile_region(
                        epoch_traces, self.l2, self.config.pipeline,
                        batches=not self._overlap_loads,
                    ).epochs
                if token is not None:
                    memo_put(token, per_epoch)
                if cache_host is not None:
                    if host_cache is None:
                        cache_host._compile_cache = host_cache = {}
                    host_cache[self._compile_key] = per_epoch
            else:
                self._compile_reuses += 1
            self._region_compiled = {
                id(t): entries
                for t, entries in zip(epoch_traces, per_epoch)
            }
        else:
            self._region_compiled = None
        width = self._region_width()
        self._pending = list(epoch_traces)
        self._pending_idx = 0
        self._region_remaining = len(epoch_traces)
        start = self.now
        spawn = self.config.tls.spawn_latency if width > 1 else 0
        for i, cpu in enumerate(self.cpus[:width]):
            if self._pending_idx >= len(self._pending):
                break
            # Fork chain: epoch k is spawned by its predecessor, so it
            # begins k spawn latencies after the region opens.
            self._start_next_epoch(cpu, start + i * spawn)
        cpus = self.cpus
        engine = self.engine
        spec_dispatch = (
            self._spec_dispatch and self._region_compiled is not None
        )
        if spec_dispatch:
            # Bindings the chained dispatch loop needs per record, frozen
            # for the region.  Building them once here and unpacking one
            # tuple per heap event replaces ~30 chained attribute loads
            # per event (every name below is assigned once at machine or
            # region setup and only mutated in place afterwards; the
            # L1's _spec_tags set *is* rebound by flash_invalidate_spec,
            # so it is deliberately absent — consumers reach it through
            # the hoisted L1 object).
            banks = self.msys.banks
            l2 = self.l2
            shared = (
                self.observer, self._overlap_loads, self._load_policies,
                self._subthread_spacing, self._spec_slice_limit,
                self._max_subthreads, self._subthread_start_cost,
                self._banks_reserve, self._chan_reserve, self._l2_lat,
                self._mem_lat, l2.load_line, l2.store_line,
                self._sync_waiters, self.msys, self._value_predict,
                banks, banks._line_shift, banks._bank_mask,
                banks._next_free, banks.occupancy,
                l2._line_versions, l2._sets, l2._set_shift,
                l2._set_mask, l2._ctx_lines,
            )
            for c in cpus:
                c.hoist = shared + (
                    c.pipeline, c.l1, c.pipeline._issue_width,
                    c.pipeline._mispredict_penalty,
                    self._other_l1s[c.index],
                    engine.exposed_load_tables[c.index].update,
                    c.l1.resident, c.l1._sets, c.l1._set_shift,
                    c.l1._set_mask, c.l1._notified_tags,
                    tuple(o.resident for o in self._other_l1s[c.index]),
                )
        # The same-cycle processing census is region-scoped (see
        # _restore_batch_journal); a journal never spans regions.
        self._proc_max_idx = -1
        # Overflow stalls never span regions either (a parked epoch must
        # commit for its region to finish); cleared defensively.
        self._overflow_parked.clear()
        # The event loop itself lives in repro.sim.engine_core — the
        # pure-Python reference — or its AOT-compiled twin, selected at
        # machine construction (see repro.sim.engine).
        self._engine_core.run_event_loop(self, spec_dispatch)

    def _start_next_epoch(self, cpu: _CPU, now: float) -> None:
        trace = self._pending[self._pending_idx]
        self._pending_idx += 1
        speculative = self.config.speculation_enabled
        epoch = self.engine.start_epoch(
            trace, cpu.index, now, speculative=speculative
        )
        if self._region_compiled is not None:
            epoch.compiled = self._region_compiled[id(trace)]
        cpu.epoch = epoch
        cpu.l1.clear_spec_marks()
        self._epochs_total += 1
        if self.observer is not None:
            self.observer.on_epoch_start(epoch)
        self._emit(now, EPOCH_START, epoch)
        self._schedule(cpu, now)

    def _emit(self, cycle: float, kind: str, epoch, detail: str = ""):
        if self.record_events and epoch is not None:
            self.events.append(
                TimelineEvent(
                    cycle=cycle,
                    kind=kind,
                    epoch_order=epoch.order,
                    cpu=epoch.cpu,
                    detail=detail,
                )
            )

    def _schedule(self, cpu: _CPU, cycle: float) -> None:
        cpu.event_version += 1
        heapq.heappush(self._heap, (cycle, cpu.index, cpu.event_version))

    # ------------------------------------------------------------------
    # Per-record execution
    # ------------------------------------------------------------------

    def _do_batch(self, cpu: _CPU, epoch: EpochExecution, entry,
                  now: float) -> float:
        """Execute a compiled super-record (non-speculative epochs only).

        The static compute/op/overhead cycles were pre-summed at compile
        time with the pipeline model's exact per-record rounding; branch
        outcomes are replayed against the live predictor here because it
        is stateful.  The total charged equals the sum the interpreted
        path would charge record by record, and because a non-speculative
        epoch's intermediate events touch no cross-CPU state, collapsing
        them into one event leaves the global interleaving unchanged.
        """
        end = entry[1]
        busy = entry[2]
        overhead = entry[3]
        instrs = entry[4]
        branches = entry[5]
        pipeline = cpu.pipeline
        if branches:
            predict = pipeline.predictor.predict_and_update
            penalty = pipeline.config.mispredict_penalty
            for pc, taken in branches:
                if not predict(pc, taken):
                    busy += penalty
        pipeline.instructions_retired += instrs
        epoch.instrs_since_checkpoint += instrs
        cp = epoch.subthreads[-1]
        cp.instructions += instrs
        self._batched_records += end - epoch.cursor
        if busy:
            cp.pending.cycles[_BUSY] += busy
        if overhead:
            cp.pending.cycles[_OVERHEAD] += overhead
        epoch.cursor = end
        return now + busy + overhead

    def _do_batch_spec(self, cpu: _CPU, epoch: EpochExecution, entry,
                       now: float, journal: _BatchJournal):
        """Journaled super-record dispatch for a *speculative* epoch.

        Returns the batch completion time, or None when the gate refuses
        (the interpreted path would have sliced a record in the run or
        opened a sub-thread checkpoint inside it — then the record is
        interpreted normally and the next dispatch retries).

        Before any state is touched the journal is armed: predictor
        scalars are snapshotted, counter writes go through an undo log,
        and the dispatch-time progress/accounting deltas are recorded.
        If a violation squashes this epoch before the completion event
        pops, ``_restore_batch_journal`` rolls all of it back and
        replays, from the entry's per-record ``steps``, exactly the
        prefix the interpreted path would have executed by then.
        """
        max_unit = entry[6]
        spacing = self._subthread_spacing
        if spacing is None:
            spacing = self.engine.spacing_for(epoch)
        limit = self._spec_slice_limit
        if spacing < limit:
            limit = spacing
        if max_unit > limit:
            return None  # a record in the run would be sliced
        instrs = entry[4]
        if (len(epoch.subthreads) < self._max_subthreads
                and epoch.instrs_since_checkpoint + instrs > spacing):
            return None  # a checkpoint boundary falls inside the run
        pipeline = cpu.pipeline
        busy = entry[2]
        branches = entry[5]
        log = journal.pred_log
        log.clear()
        journal.pred_snap = pipeline.predictor.journal()
        if branches:
            busy += pipeline.train_branch_run(branches, log)
        overhead = entry[3]
        end = entry[1]
        journal.epoch = epoch
        journal.start = epoch.cursor
        journal.start_time = now
        journal.steps = entry[7]
        journal.instrs = instrs
        journal.busy = busy
        journal.overhead = overhead
        pipeline.instructions_retired += instrs
        epoch.instrs_since_checkpoint += instrs
        cp = epoch.subthreads[-1]
        cp.instructions += instrs
        self._batched_records += end - epoch.cursor
        self._spec_batches += 1
        if busy:
            cp.pending.cycles[_BUSY] += busy
        if overhead:
            cp.pending.cycles[_OVERHEAD] += overhead
        epoch.cursor = end
        return now + busy + overhead

    def _restore_batch_journal(self, epoch) -> None:
        """Rewind hook: undo an in-flight batch on ``epoch``, if any.

        Called by the engine as the first action of a rewind, *before*
        ``epoch.rewind_to`` captures Failed cycles, so the epoch's
        progress and accounting match what the interpreted path would
        show at this instant.  The dispatch-time mutations are undone
        wholesale, then the records the interpreted path would already
        have executed are replayed from the journal's ``steps``.

        A step scheduled at time ``t`` has fired iff ``t < now``, or
        ``t == now`` and a CPU with a higher index than ours has already
        processed an event this cycle (events tie-break by CPU index, so
        ours would have popped first).  ``_proc_max_idx`` tracks exactly
        that census; it is reset per region, and a journal never spans
        regions.
        """
        cpu = self.cpus[epoch.cpu]
        journal = cpu.journal
        if journal.epoch is not epoch:
            return
        journal.epoch = None
        pipeline = cpu.pipeline
        cp = epoch.subthreads[-1]
        instrs = journal.instrs
        pipeline.instructions_retired -= instrs
        epoch.instrs_since_checkpoint -= instrs
        cp.instructions -= instrs
        if journal.busy:
            cp.pending.cycles[_BUSY] -= journal.busy
        if journal.overhead:
            cp.pending.cycles[_OVERHEAD] -= journal.overhead
        pipeline.predictor.restore(journal.pred_snap, journal.pred_log)
        self._batched_records -= epoch.cursor - journal.start
        self._batch_squashes += 1
        # Interpreted-prefix replay.
        now = self.now
        fired_at_now = self._proc_max_idx > cpu.index
        predict = pipeline.predictor.predict_and_update
        penalty = pipeline._mispredict_penalty
        pending = cp.pending.cycles
        t = journal.start_time
        cursor = journal.start
        for n_instrs, cycles, is_overhead, branch in journal.steps:
            if t > now or (t == now and not fired_at_now):
                break
            if branch is not None and not predict(branch[0], branch[1]):
                cycles += penalty
            pipeline.instructions_retired += n_instrs
            epoch.instrs_since_checkpoint += n_instrs
            cp.instructions += n_instrs
            pending[_OVERHEAD if is_overhead else _BUSY] += cycles
            t += cycles
            cursor += 1
        epoch.cursor = cursor

    def _mlp_stall(self, cpu: _CPU, epoch: EpochExecution,
                   now: float) -> float:
        """Overlap-mode bookkeeping: returns extra stall cycles.

        Completed misses are retired from the MSHR list; if the reorder
        window (rob_entries instructions) has fully retired past the
        oldest outstanding miss, the CPU must wait for its data.
        """
        if not cpu.outstanding:
            return 0.0
        cpu.outstanding = [
            (ready, issued) for ready, issued in cpu.outstanding
            if ready > now
        ]
        if not cpu.outstanding:
            return 0.0
        oldest_ready, issued_at = cpu.outstanding[0]
        window = self.config.pipeline.rob_entries
        if cpu.pipeline.instructions_retired - issued_at >= window:
            cpu.outstanding.pop(0)
            return max(0.0, oldest_ready - now)
        return 0.0

    def _do_compute(self, cpu: _CPU, epoch: EpochExecution, count: int,
                    category: str, now: float) -> float:
        """Retire (part of) a COMPUTE batch.

        Large batches are consumed in slices no longer than the distance
        to the next sub-thread boundary, so checkpoints land at the
        configured spacing even inside long straight-line code.
        """
        remaining = count - epoch.offset
        chunk = remaining
        if epoch.speculative:
            # Keep speculative compute slices bounded: boundaries land
            # exactly on the spacing schedule, and a violation arriving
            # mid-slice mis-attributes at most one slice of cycles to
            # Failed (even when the periodic policy is disabled).
            spacing = self._subthread_spacing
            if spacing is None:
                spacing = self.engine.spacing_for(epoch)
            chunk = min(chunk, spacing, self._spec_slice_limit)
            if len(epoch.subthreads) < self._max_subthreads:
                to_boundary = spacing - epoch.instrs_since_checkpoint
                if 0 < to_boundary < chunk:
                    chunk = to_boundary
        # cpu.pipeline.compute_cycles, inlined.
        pipeline = cpu.pipeline
        pipeline.instructions_retired += chunk
        width = pipeline._issue_width
        cycles = (chunk + width - 1) // width
        mlp_stall = (
            self._mlp_stall(cpu, epoch, now)
            if self._overlap_loads else 0.0
        )
        epoch.instrs_since_checkpoint += chunk
        cp = epoch.subthreads[-1]
        cp.instructions += chunk
        cp.pending.cycles[category] += cycles
        if mlp_stall:
            cp.pending.cycles[_MISS] += mlp_stall
            cycles += mlp_stall
        if epoch.offset + chunk >= count:
            epoch.cursor += 1
            epoch.offset = 0
        else:
            epoch.offset += chunk
        return now + cycles

    # ------------------------------------------------------------------
    # Memory references
    # ------------------------------------------------------------------

    @staticmethod
    def _sub_access(addr: int, size: int, line: int, line_size: int):
        """Clip an access to the part falling within one cache line."""
        sub_addr = max(addr, line)
        sub_end = min(addr + max(size, 1), line + line_size)
        return sub_addr, max(1, sub_end - sub_addr)

    def _do_load(self, cpu: _CPU, epoch: EpochExecution, rec, now: float):
        _, addr, size, pc = rec
        geom = self.l2.geom
        if cpu.sync_skip:
            cpu.sync_skip = False
        elif self._load_policies:
            # Section 5.1 policy: checkpoint right before a predicted-
            # violating load (zero-cost by default; a nonzero cost delays
            # the load by one event).
            if self.engine.maybe_start_predictor_subthread(epoch, pc, now):
                self._emit(now, SUBTHREAD_START, epoch, detail="predictor")
                cost = self._subthread_start_cost
                if cost:
                    epoch.accrue(Category.OVERHEAD, cost)
                    self._schedule(cpu, now + cost)
                    return
            # Moshovos-style policy: synchronize instead of speculating.
            if self.engine.should_synchronize_load(epoch, pc):
                line = geom.line_addr(addr)
                cpu.sync_line = line
                cpu.block_start = now
                self._emit(now, STALL_BEGIN, epoch, detail="sync")
                cpu.event_version += 1
                self._sync_waiters.setdefault(line, []).append(cpu.index)
                return
        epoch.retire(1)
        if self.observer is not None:
            self.observer.on_op(epoch, Rec.LOAD, addr, size, pc)
        l1 = cpu.l1
        l2 = self.l2
        engine = self.engine
        msys = self.msys
        line_size = geom.line_size
        speculative = epoch.speculative
        access_end = addr + (size if size > 1 else 1)
        stall = 0.0
        for line in geom.lines_touched(addr, size):
            # Clip the access to this line (inline of _sub_access).
            sub_addr = addr if addr >= line else line
            sub_end = line + line_size
            if access_end < sub_end:
                sub_end = access_end
            sub_size = sub_end - sub_addr
            if sub_size < 1:
                sub_size = 1
            if l1.access(line):
                if speculative and not l1.is_notified(line):
                    mask = l2.word_mask(sub_addr, sub_size)
                    if not epoch.covers_load(line, mask):
                        # First exposed access to this line by this epoch:
                        # notify the L2 so its speculative-load bit is set.
                        # The notification is asynchronous (piggybacks on
                        # the write-through traffic): it reserves a bank
                        # slot but does not stall the CPU.
                        _result, exposed = engine.load(
                            epoch, sub_addr, sub_size, pc
                        )
                        msys.banks.reserve(line, now)
                        if exposed:
                            l1.mark_spec(
                                line,
                                notified=True,
                                subidx=epoch.current_subthread.index,
                            )
                continue
            result, exposed = engine.load(epoch, sub_addr, sub_size, pc)
            if result.hit:
                ready = msys.l2_access(line, now)
            else:
                ready = msys.memory_access(line, now)
            extra = result.memory_accesses - (0 if result.hit else 1)
            for _ in range(max(0, extra)):
                msys.extra_memory_transfer(now)
            if result.invalidated_lines:
                self._apply_inclusion(result.invalidated_lines)
            if self._overlap_loads:
                # Non-blocking: the miss occupies an MSHR; the CPU stalls
                # only when the MSHRs are exhausted (plus any ROB-window
                # drain computed at retirement time).
                if len(cpu.outstanding) >= self._mshr_entries:
                    oldest_ready, _ = cpu.outstanding.pop(0)
                    stall = max(stall, oldest_ready - now)
                cpu.outstanding.append(
                    (ready, cpu.pipeline.instructions_retired)
                )
            else:
                if ready - now > stall:
                    stall = ready - now
            subidx = (
                epoch.current_subthread.index if speculative else -1
            )
            l1.fill(line, spec=speculative, subidx=subidx)
            if speculative and exposed:
                l1.mark_spec(line, notified=True, subidx=subidx)
        epoch.accrue(Category.BUSY, 1)
        if stall > 0:
            epoch.accrue(Category.MISS, stall)
        epoch.cursor += 1
        self._schedule(cpu, now + 1 + stall)

    def _do_store(self, cpu: _CPU, epoch: EpochExecution, rec, now: float):
        _, addr, size, pc = rec
        epoch.retire(1)
        if self.observer is not None:
            self.observer.on_op(epoch, Rec.STORE, addr, size, pc)
        geom = self.l2.geom
        engine = self.engine
        msys = self.msys
        other_l1s = self._other_l1s[cpu.index]
        l1 = cpu.l1
        line_size = geom.line_size
        speculative = epoch.speculative
        access_end = addr + (size if size > 1 else 1)
        self_rewound = False
        for line in geom.lines_touched(addr, size):
            # Clip the access to this line (inline of _sub_access).
            sub_addr = addr if addr >= line else line
            sub_end = line + line_size
            if access_end < sub_end:
                sub_end = access_end
            sub_size = sub_end - sub_addr
            if sub_size < 1:
                sub_size = 1
            result, rewinds = engine.store(epoch, sub_addr, sub_size, pc)
            # Write-through: the store reserves bandwidth but the CPU does
            # not wait for it (store buffer).
            msys.banks.reserve(line, now)
            for _ in range(result.memory_accesses):
                msys.extra_memory_transfer(now)
            if result.invalidated_lines:
                self._apply_inclusion(result.invalidated_lines)
            # Write-invalidate coherence: drop stale copies in other L1s
            # (empty caches have nothing to drop).
            for ol1 in other_l1s:
                if line in ol1.resident:
                    ol1.invalidate(line)
            l1.fill(
                line,
                spec=speculative,
                subidx=(
                    epoch.current_subthread.index
                    if speculative else -1
                ),
            )
            # Rewinds must be applied before waking synchronized loads:
            # a victim that was sync-blocked has its wait cancelled (the
            # blocked interval is covered by the wall-interval Failed
            # charge) and must not also receive a stall accrual.
            if rewinds:
                self._apply_rewinds(rewinds, now)
                self_rewound = self_rewound or any(
                    r.epoch is epoch for r in rewinds
                )
            self._wake_sync_on_store(line, epoch.order, now)
        if self_rewound:
            # Our own state overflowed and we were squashed mid-record;
            # the rewind already rescheduled us.
            return
        epoch.accrue(Category.BUSY, 1)
        epoch.cursor += 1
        self._schedule(cpu, now + 1)

    def _apply_inclusion(self, lines: List[int]) -> None:
        """L2 evictions invalidate any L1 copies (inclusion)."""
        for line in lines:
            for cpu in self.cpus:
                if line in cpu.l1.resident:
                    cpu.l1.invalidate(line)

    # ------------------------------------------------------------------
    # Memory references — compiled fast path (repro.trace.compile)
    # ------------------------------------------------------------------

    def _do_load_fast(self, cpu: _CPU, epoch: EpochExecution, rec,
                      lines, now: float):
        """Load with precompiled per-line tuples.

        Mirrors :meth:`_do_load` exactly, but the line walk, access
        clipping, and mask arithmetic were done once at compile time.
        Returns the CPU's next event time, or None when blocked or
        rescheduled elsewhere.
        """
        pc = rec[3]
        if cpu.sync_skip:
            cpu.sync_skip = False
        elif self._load_policies:
            if self.engine.maybe_start_predictor_subthread(epoch, pc, now):
                self._emit(now, SUBTHREAD_START, epoch, detail="predictor")
                cost = self._subthread_start_cost
                if cost:
                    epoch.accrue(Category.OVERHEAD, cost)
                    self._schedule(cpu, now + cost)
                    return None
            if self.engine.should_synchronize_load(epoch, pc):
                line = lines[0][0]
                cpu.sync_line = line
                cpu.block_start = now
                self._emit(now, STALL_BEGIN, epoch, detail="sync")
                cpu.event_version += 1
                self._sync_waiters.setdefault(line, []).append(cpu.index)
                return None
        # epoch.retire(1), inlined (hot path).
        epoch.instrs_since_checkpoint += 1
        cp = epoch.subthreads[-1]
        cp.instructions += 1
        if self.observer is not None:
            self.observer.on_op(epoch, Rec.LOAD, rec[1], rec[2], pc)
        self._fast_loads += 1
        l1 = cpu.l1
        msys = self.msys
        banks_reserve = self._banks_reserve
        chan_reserve = self._chan_reserve
        l2_lat = self._l2_lat
        mem_lat = self._mem_lat
        overlap = self._overlap_loads
        l2_load = self.l2.load_line
        order = epoch.order
        stall = 0.0
        if not epoch.speculative:
            # Non-speculative epochs never expose loads, value-predict,
            # or carry a context: go straight to the L2.
            for line, _sub_addr, _mask, load_bits, _private in lines:
                if l1.access(line):
                    continue
                hit, result = l2_load(line, order, None, False, load_bits)
                if hit:
                    # msys.l2_access, inlined.
                    ready = banks_reserve(line, now) + l2_lat
                else:
                    # msys.memory_access, inlined.
                    ready = chan_reserve(
                        banks_reserve(line, now) + l2_lat
                    ) + mem_lat
                    if result.memory_accesses > 1:
                        for _ in range(result.memory_accesses - 1):
                            msys.extra_memory_transfer(now)
                    if result.invalidated_lines:
                        self._apply_inclusion(result.invalidated_lines)
                if overlap:
                    if len(cpu.outstanding) >= self._mshr_entries:
                        oldest_ready, _ = cpu.outstanding.pop(0)
                        stall = max(stall, oldest_ready - now)
                    cpu.outstanding.append(
                        (ready, cpu.pipeline.instructions_retired)
                    )
                elif ready - now > stall:
                    stall = ready - now
                l1.fill(line, spec=False, subidx=-1)
        else:
            # Speculative loads: engine.load_compiled is inlined below
            # (covers_load via the epoch's store-mask union, the value-
            # prediction gate, and the exposed-load-table update).
            engine = self.engine
            su = epoch.store_union
            vp = self._value_predict
            ctx = cp.ctx
            subidx = cp.index
            elt_update = engine.exposed_load_tables[epoch.cpu].update
            for line, sub_addr, mask, load_bits, _private in lines:
                if l1.access(line):
                    if not l1.is_notified(line):
                        written = su.get(line)
                        if written is None or (mask & ~written):
                            # First exposed access to this line by this
                            # epoch: notify the L2 (asynchronous;
                            # reserves a bank slot but does not stall
                            # the CPU).
                            exposed = True
                            if vp and engine._value_prediction_hits(
                                epoch, sub_addr, pc
                            ):
                                exposed = False
                                engine.value_predictions_used += 1
                            l2_load(line, order, ctx, exposed, load_bits)
                            banks_reserve(line, now)
                            if exposed:
                                elt_update(line, pc)
                                l1.mark_spec(
                                    line, notified=True, subidx=subidx
                                )
                    continue
                written = su.get(line)
                exposed = written is None or bool(mask & ~written)
                if exposed and vp and engine._value_prediction_hits(
                    epoch, sub_addr, pc
                ):
                    exposed = False
                    engine.value_predictions_used += 1
                hit, result = l2_load(line, order, ctx, exposed, load_bits)
                if exposed:
                    elt_update(line, pc)
                if hit:
                    # msys.l2_access, inlined.
                    ready = banks_reserve(line, now) + l2_lat
                else:
                    # msys.memory_access, inlined.
                    ready = chan_reserve(
                        banks_reserve(line, now) + l2_lat
                    ) + mem_lat
                    if result.memory_accesses > 1:
                        for _ in range(result.memory_accesses - 1):
                            msys.extra_memory_transfer(now)
                    if result.invalidated_lines:
                        self._apply_inclusion(result.invalidated_lines)
                if overlap:
                    if len(cpu.outstanding) >= self._mshr_entries:
                        oldest_ready, _ = cpu.outstanding.pop(0)
                        stall = max(stall, oldest_ready - now)
                    cpu.outstanding.append(
                        (ready, cpu.pipeline.instructions_retired)
                    )
                elif ready - now > stall:
                    stall = ready - now
                # fill + mark_spec folded into one lookup.
                l1.fill(line, spec=True, subidx=subidx, notified=exposed)
        # epoch.accrue, inlined.
        cp.pending.cycles[_BUSY] += 1
        if stall > 0:
            cp.pending.cycles[_MISS] += stall
        epoch.cursor += 1
        return now + 1 + stall

    def _do_store_fast(self, cpu: _CPU, epoch: EpochExecution, rec,
                       lines, now: float):
        """Store with precompiled per-line tuples.

        Mirrors :meth:`_do_store`; additionally, region-private lines
        (only this epoch ever touches them) skip the violation scan in
        the L2 and the synchronized-load wakeup — both provably no-ops
        for such lines.  Returns the CPU's next event time, or None when
        a rewind of this epoch already rescheduled it.
        """
        pc = rec[3]
        # epoch.retire(1), inlined (hot path).
        epoch.instrs_since_checkpoint += 1
        epoch.subthreads[-1].instructions += 1
        if self.observer is not None:
            self.observer.on_op(epoch, Rec.STORE, rec[1], rec[2], pc)
        self._fast_stores += 1
        engine = self.engine
        msys = self.msys
        l1 = cpu.l1
        other_l1s = self._other_l1s[cpu.index]
        banks_reserve = self._banks_reserve
        sync_waiters = self._sync_waiters
        l2_store = self.l2.store_line
        order = epoch.order
        speculative = epoch.speculative
        if speculative:
            # engine.store_compiled's prologue (epoch.note_store +
            # epoch.current_ctx), inlined; every epoch has sub-thread 0.
            cp = epoch.subthreads[-1]
            sm = cp.store_mask
            su = epoch.store_union
            ctx = cp.ctx
            subidx = cp.index
        else:
            sm = su = None
            ctx = None
            subidx = -1
        self_rewound = False
        for line, _sub_addr, words, _load_bits, private in lines:
            if speculative:
                sm[line] = sm.get(line, 0) | words
                su[line] = su.get(line, 0) | words
            _hit, result = l2_store(line, order, ctx, words, pc,
                                    not private)
            rewinds = None
            if result is not None:
                violations = result.violations
                overflow = result.overflow_squash
                if violations or overflow:
                    rewinds = engine._resolve_violations(violations)
                    if overflow:
                        rewinds.extend(engine._resolve_overflow(overflow))
            # Write-through: the store reserves bandwidth but the CPU does
            # not wait for it (store buffer).
            banks_reserve(line, now)
            if result is not None:
                if result.memory_accesses:
                    for _ in range(result.memory_accesses):
                        msys.extra_memory_transfer(now)
                if result.invalidated_lines:
                    self._apply_inclusion(result.invalidated_lines)
            for ol1 in other_l1s:
                if line in ol1.resident:
                    ol1.invalidate(line)
            l1.fill(line, spec=speculative, subidx=subidx)
            # Rewinds (overflow squashes can hit even on private lines)
            # apply before waking synchronized loads — see _do_store.
            if rewinds:
                self._apply_rewinds(rewinds, now)
                self_rewound = self_rewound or any(
                    r.epoch is epoch for r in rewinds
                )
                if speculative:
                    # A rewind may have truncated the sub-thread list and
                    # replaced the store-mask union: refresh the locals.
                    cp = epoch.subthreads[-1]
                    sm = cp.store_mask
                    su = epoch.store_union
                    ctx = cp.ctx
                    subidx = cp.index
            if private:
                self._private_stores += 1
            elif sync_waiters:
                # A waiter's synchronization line appears in its own
                # trace, so a line no other epoch touches has no waiters.
                self._wake_sync_on_store(line, order, now)
        if self_rewound:
            # Our own state overflowed and we were squashed mid-record;
            # the rewind already rescheduled us.
            return None
        # epoch.accrue, inlined.
        epoch.subthreads[-1].pending.cycles[_BUSY] += 1
        epoch.cursor += 1
        return now + 1

    # ------------------------------------------------------------------
    # Latches (escaped speculation)
    # ------------------------------------------------------------------

    def _do_latch_acquire(self, cpu, epoch, rec, now: float):
        _, latch_id, _pc = rec
        epoch.retire(1)
        if self.latches.try_acquire(latch_id, epoch):
            epoch.current_subthread.latches.append(latch_id)
            epoch.accrue(Category.BUSY, 1)
            epoch.cursor += 1
            self._schedule(cpu, now + 1)
        else:
            # Block; woken by the holder's release (or a rewind).
            cpu.blocked_latch = latch_id
            cpu.block_start = now
            self._emit(now, STALL_BEGIN, epoch, detail=f"latch {latch_id}")
            cpu.event_version += 1  # invalidate any queued event

    def _do_latch_release(self, cpu, epoch, rec, now: float):
        _, latch_id = rec
        epoch.retire(1)
        granted = self.latches.release(latch_id, epoch)
        if granted is not None:
            self._grant_latch(granted, now)
        epoch.accrue(Category.BUSY, 1)
        epoch.cursor += 1
        self._schedule(cpu, now + 1)

    def _grant_latch(self, winner: EpochExecution, now: float) -> None:
        """A blocked epoch was granted the latch it was waiting for."""
        wcpu = self.cpus[winner.cpu]
        if wcpu.epoch is not winner or wcpu.blocked_latch is None:
            return
        latch_id = wcpu.blocked_latch
        if self.latches.holder_of(latch_id) is not winner:
            return
        stall = max(0.0, now - wcpu.block_start)
        winner.accrue(Category.SYNC, stall)
        winner.current_subthread.latches.append(latch_id)
        winner.cursor += 1  # past its LATCH_ACQ record
        wcpu.blocked_latch = None
        self._emit(now, STALL_END, winner)
        self._schedule(wcpu, now + 1)

    # ------------------------------------------------------------------
    # Load synchronization (predicted-violating loads)
    # ------------------------------------------------------------------

    def _wake_sync_on_store(self, line: int, store_order: int,
                            now: float) -> None:
        """An earlier epoch stored the line a synchronized load waits on."""
        waiters = self._sync_waiters.get(line)
        if not waiters:
            return
        for idx in list(waiters):
            wcpu = self.cpus[idx]
            if (
                wcpu.sync_line == line
                and wcpu.epoch is not None
                and wcpu.epoch.order > store_order
            ):
                self._release_sync_waiter(wcpu, now)

    def _wake_eligible_sync_waiters(self, now: float) -> None:
        """Wake synchronized loads with no running earlier epoch left."""
        for waiters in list(self._sync_waiters.values()):
            for idx in list(waiters):
                wcpu = self.cpus[idx]
                epoch = wcpu.epoch
                if epoch is None or wcpu.sync_line is None:
                    waiters.remove(idx)
                    continue
                blocked_by = any(
                    other.order < epoch.order
                    and other.status == EpochStatus.RUNNING
                    for other in self.engine.active.values()
                )
                if not blocked_by:
                    self._release_sync_waiter(wcpu, now)

    def _release_sync_waiter(self, wcpu: _CPU, now: float) -> None:
        """Unblock a synchronized load: account the stall and resume."""
        line = wcpu.sync_line
        waiters = self._sync_waiters.get(line)
        if waiters and wcpu.index in waiters:
            waiters.remove(wcpu.index)
        stall = max(0.0, now - wcpu.block_start)
        if wcpu.epoch is not None:
            wcpu.epoch.accrue(Category.SYNC, stall)
            self._emit(now, STALL_END, wcpu.epoch)
        wcpu.sync_line = None
        wcpu.sync_skip = True
        self._schedule(wcpu, now)

    def _cancel_sync_wait(self, cpu: _CPU) -> None:
        if cpu.sync_line is None:
            return
        waiters = self._sync_waiters.get(cpu.sync_line)
        if waiters and cpu.index in waiters:
            waiters.remove(cpu.index)
        cpu.sync_line = None

    # ------------------------------------------------------------------
    # Violations
    # ------------------------------------------------------------------

    def _apply_rewinds(self, actions: List[RewindAction], now: float) -> None:
        """Apply engine rewind decisions to CPU/timing state."""
        for action in actions:
            epoch = action.epoch
            vcpu = self.cpus[epoch.cpu]
            if vcpu.epoch is not epoch:
                continue  # epoch already gone (should not happen)
            if self.observer is not None:
                self.observer.on_rewind(epoch, action.subthread_idx)
            # A victim blocked on a latch stops waiting and re-executes;
            # the blocked interval is covered by the wall-interval Failed
            # charge below.
            if vcpu.blocked_latch is not None:
                self.latches.cancel_wait(vcpu.blocked_latch, epoch)
                vcpu.blocked_latch = None
            # Likewise for a synchronized (predicted-violating) load.
            if vcpu.sync_line is not None:
                self._cancel_sync_wait(vcpu)
            # Latches acquired by rewound code are released (compensation);
            # waiters granted a latch as a result wake up now.
            winners = self.latches.release_all(
                action.latches_released, epoch
            )
            self._emit(
                now, VIOLATION, epoch,
                detail=(
                    f"{'secondary' if action.secondary else 'primary'} "
                    f"-> sub-thread {action.subthread_idx}"
                ),
            )
            # Everything the rewound sub-threads did becomes Failed time.
            # Attribution is by wall interval, not by the pending cycle
            # counters: an in-flight record (e.g. a long load stall) has
            # its full cost accrued at issue, so counters can overshoot
            # the violation instant.  The interval [sub-thread start,
            # now] is exact, and the per-epoch [failed_low, failed_high]
            # watermark keeps repeated rewinds from double-charging.
            start = epoch.last_rewound_start
            restart = now + self.config.tls.violation_penalty
            vcpu.totals.add(
                Category.FAILED,
                epoch.charge_failed_interval(start, restart),
            )
            vcpu.outstanding.clear()
            # The L1 drops its speculative lines (Section 2.2) — all of
            # them with the paper's sub-thread-unaware L1s, or only the
            # rewound sub-threads' lines with the optional tracking.
            if self.config.l1_subthread_tracking:
                vcpu.l1.flash_invalidate_spec(
                    from_subidx=action.subthread_idx
                )
            else:
                vcpu.l1.flash_invalidate_spec()
            # The re-started sub-thread begins (again) at the restart
            # instant; future rewinds to it charge from here.
            epoch.current_subthread.start_cycle = restart
            self._overflow_parked.pop(epoch.cpu, None)
            if action.overflow and epoch.order > self.engine.commit_horizon:
                horizon = self.engine.commit_horizon
                if self._overflow_seen.get(epoch.order) == horizon:
                    # Second overflow with no commit progress in
                    # between: the squash is deterministic and will
                    # recur, so park the epoch until the horizon
                    # advances (the stall gap is accounted as Idle).
                    # The oldest uncommitted epoch is never parked —
                    # it is what advances the horizon.
                    vcpu.event_version += 1
                    self._overflow_parked[epoch.cpu] = (epoch, restart)
                    for winner in winners:
                        self._grant_latch(winner, now)
                    continue
                self._overflow_seen[epoch.order] = horizon
            self._schedule(vcpu, restart)
            for winner in winners:
                self._grant_latch(winner, now)

    # ------------------------------------------------------------------
    # Commit / completion
    # ------------------------------------------------------------------

    def _finish_epoch(self, cpu: _CPU, epoch: EpochExecution, now: float):
        # Outstanding misses must drain before the epoch can finish.
        if self.config.overlap_loads and cpu.outstanding:
            last_ready = max(r for r, _ in cpu.outstanding)
            cpu.outstanding.clear()
            if last_ready > now:
                epoch.accrue(Category.MISS, last_ready - now)
                self._schedule(cpu, last_ready)
                return
        self._emit(now, FINISH, epoch)
        self.engine.finish_epoch(epoch, now)
        cpu.event_version += 1  # no more events until commit or violation
        committed = self.engine.try_commit()
        # An epoch finishing/committing may unblock synchronized loads
        # that were waiting out earlier epochs.
        self._wake_eligible_sync_waiters(now)
        if committed:
            self._wake_overflow_parked(now)
        for done in committed:
            if self.observer is not None:
                self.observer.on_commit(done)
            self._emit(now, COMMIT, done)
            self._overflow_seen.pop(done.order, None)
            dcpu = self.cpus[done.cpu]
            dcpu.totals.merge(done.drain_pending())
            dcpu.l1.clear_spec_marks()
            dcpu.epoch = None
            self._region_remaining -= 1
            if self._pending_idx < len(self._pending):
                width = self._region_width()
                if done.cpu < width:
                    spawn = (
                        self.config.tls.spawn_latency if width > 1 else 0
                    )
                    self._start_next_epoch(dcpu, now + spawn)

    def _wake_overflow_parked(self, now: float) -> None:
        """Retry epochs stalled on repeated overflow squashes.

        Called when the commit horizon advances: the committed epoch's
        speculative lines are gone, so a parked epoch's next attempt
        has a chance.  If it overflows again at the *new* horizon it
        parks again (``_apply_rewinds``), so each epoch retries at most
        once per commit — forward progress is paced by the homefree
        epoch, which is never parked.
        """
        if not self._overflow_parked:
            return
        parked = self._overflow_parked
        self._overflow_parked = {}
        for cpu_idx in sorted(parked):
            epoch, restart = parked[cpu_idx]
            cpu = self.cpus[cpu_idx]
            if cpu.epoch is not epoch:
                continue
            t = restart if restart > now else now
            # The stall gap [restart, t] is unattributed and therefore
            # lands in Idle; failed-cycle charging resumes from the
            # actual re-start instant.
            epoch.current_subthread.start_cycle = t
            self._schedule(cpu, t)

    # ------------------------------------------------------------------
    # Deadlock safety net
    # ------------------------------------------------------------------

    def _break_deadlock(self) -> None:
        """All CPUs are blocked (or idle) with the region unfinished.

        The latch-ordering discipline in the trace generator should make
        this unreachable; if it happens we violate a speculative latch
        *holder* so the waiters can progress, keeping the simulation sound.
        """
        if self._overflow_parked:
            # Overflow-stalled epochs are woken on commit; if the region
            # has otherwise run dry (e.g. every live epoch is parked),
            # retrying them is always sound — parking is a scheduling
            # choice, not a protocol state.
            self._wake_overflow_parked(self.now)
            return
        blocked_sync = [
            cpu for cpu in self.cpus
            if cpu.sync_line is not None and cpu.epoch is not None
        ]
        if blocked_sync:
            # A synchronized load can always resume safely (proceeding is
            # just ordinary speculation); release the logically-oldest.
            target = min(blocked_sync, key=lambda c: c.epoch.order)
            self._release_sync_waiter(target, self.now)
            return
        blocked = [
            cpu for cpu in self.cpus
            if cpu.blocked_latch is not None and cpu.epoch is not None
        ]
        if not blocked:
            raise RuntimeError(
                "region cannot progress: no events and no blocked CPUs"
            )
        for cpu in sorted(blocked, key=lambda c: c.epoch.order):
            holder = self.latches.holder_of(cpu.blocked_latch)
            if (
                isinstance(holder, EpochExecution)
                and holder.speculative
                and holder.subthreads
            ):
                self._deadlock_breaks += 1
                action = self.engine.force_rewind(holder, 0)
                self._apply_rewinds([action], self.now)
                return
        raise RuntimeError("unbreakable latch deadlock among epochs")

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def metrics(self):
        """Publish every subsystem counter into a fresh registry.

        The dotted names match ``SimulationStats.METRIC_SOURCES``, so
        ``stats.apply_metrics(machine.metrics().snapshot())`` fills the
        stats object, and the span tracer can emit the same names as a
        ``counter`` record without a second naming scheme.  Providers
        are lambdas over live subsystem state — registration is free and
        nothing is evaluated until ``snapshot()``.
        """
        from ..obs.metrics import MetricsRegistry

        engine, l2, cpus = self.engine, self.l2, self.cpus
        registry = MetricsRegistry()
        registry.register_many([
            ("engine.primary_violations",
             lambda: engine.primary_violations),
            ("engine.secondary_violations",
             lambda: engine.secondary_violations),
            ("engine.secondary_rewinds_avoided",
             lambda: engine.secondary_rewinds_avoided),
            ("engine.subthreads_started",
             lambda: engine.subthreads_started),
            ("engine.epochs_committed", lambda: engine.epochs_committed),
            ("engine.epochs_total", lambda: self._epochs_total),
            ("engine.load_predictor_entries",
             lambda: len(engine.load_predictor)),
            ("machine.deadlock_breaks", lambda: self._deadlock_breaks),
            ("machine.branch_mispredictions",
             lambda: sum(
                 c.pipeline.predictor.mispredictions for c in cpus
             )),
            ("machine.instructions_retired",
             lambda: sum(c.pipeline.instructions_retired for c in cpus)),
            ("l1.hits", lambda: sum(c.l1.hits for c in cpus)),
            ("l1.misses", lambda: sum(c.l1.misses for c in cpus)),
            ("l1.spec_invalidations",
             lambda: sum(c.l1.spec_invalidations for c in cpus)),
            ("l2.hits", lambda: l2.hits),
            ("l2.misses", lambda: l2.misses),
            ("l2.victim_spills", lambda: l2.victim_spills),
            ("l2.overflow_squashes", lambda: l2.overflow_squashes),
            ("compile.batched_records", lambda: self._batched_records),
            ("compile.fastpath_loads", lambda: self._fast_loads),
            ("compile.fastpath_stores", lambda: self._fast_stores),
            ("compile.private_line_stores",
             lambda: self._private_stores),
            ("compile.spec_batches", lambda: self._spec_batches),
            ("compile.batch_squashes", lambda: self._batch_squashes),
            ("compile.region_cache_reuses", lambda: self._compile_reuses),
            ("compile.columnar_batches", lambda: self._col_batches),
            ("compile.columnar_accesses", lambda: self._col_accesses),
            ("compile.columnar_residue", lambda: self._col_residue),
            ("compile.columnar_store_batches",
             lambda: self._col_store_batches),
            ("compile.columnar_store_accesses",
             lambda: self._col_store_accesses),
            ("compile.columnar_store_residue",
             lambda: self._col_store_residue),
        ])
        return registry

    def _collect_stats(self) -> SimulationStats:
        stats = SimulationStats(n_cpus=self.config.n_cpus)
        stats.total_cycles = self.now
        stats.per_cpu = [cpu.totals for cpu in self.cpus]
        snapshot = self.metrics().snapshot()
        if self._warm_metrics is not None:
            # Functional warming bumped cache/predictor tallies while
            # the clock stood still; report measured-phase deltas only.
            snapshot = {
                name: value - self._warm_metrics.get(name, 0)
                for name, value in snapshot.items()
            }
        stats.apply_metrics(snapshot)
        stats.dependence_pairs = self.engine.profiler.pairs()
        stats.finalize_idle()
        return stats
