"""Machine configuration (Table 1 of the paper) and execution modes."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.engine import TLSConfig
from ..cpu.pipeline import PipelineConfig
from ..memory.cache import CacheGeometry


class ExecutionMode:
    """The five bars of Figure 5."""

    #: Unmodified sequential trace on one CPU (no TLS instructions).
    SEQUENTIAL = "sequential"
    #: TLS-transformed trace (software overheads included) on one CPU.
    TLS_SEQ = "tls_seq"
    #: 4-CPU TLS, all-or-nothing: one sub-thread context per thread.
    NO_SUBTHREAD = "no_subthread"
    #: 4-CPU TLS with sub-thread support (the paper's baseline: 8
    #: sub-threads per thread).
    BASELINE = "baseline"
    #: Upper bound: speculative accesses treated as non-speculative, all
    #: dependences ignored (never violates).
    NO_SPECULATION = "no_speculation"

    ALL = (SEQUENTIAL, TLS_SEQ, NO_SUBTHREAD, BASELINE, NO_SPECULATION)


@dataclass(frozen=True)
class MachineConfig:
    """Full-system parameters, defaults per Table 1.

    Memory parameters: 32B cache lines; 32KB 4-way L1 instruction and data
    caches (2 data banks); a unified 2MB 4-way L2 in 4 banks with a
    64-entry speculative victim cache; crossbar at 8B/cycle/bank; 10-cycle
    minimum miss latency to the L2; 75 cycles to local memory; one memory
    access per 20 cycles.
    """

    n_cpus: int = 4
    line_size: int = 32
    l1_size: int = 32 * 1024
    l1_assoc: int = 4
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 4
    l2_banks: int = 4
    l2_bank_occupancy: int = 4
    l2_latency: int = 10
    memory_latency: int = 75
    memory_gap: int = 20
    victim_entries: int = 64
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    tls: TLSConfig = field(default_factory=TLSConfig)
    #: Treat every access as non-speculative (NO SPECULATION mode).
    speculation_enabled: bool = True
    #: Memory-level parallelism model for load misses.  False (default):
    #: loads block — the sound choice for value-free traces, used for all
    #: paper numbers.  True: a load miss occupies an MSHR and retirement
    #: continues until either the MSHRs fill or the reorder buffer's
    #: worth of instructions has retired past the oldest outstanding
    #: miss — a bounded-window approximation of out-of-order overlap.
    overlap_loads: bool = False
    #: Outstanding data-miss limit when overlap_loads is on.
    mshr_entries: int = 8
    #: Optional hardware extension (Section 2.2): track sub-threads in
    #: the L1s so a violation invalidates only lines touched by rewound
    #: sub-threads instead of every speculative line.  The paper found
    #: this "not worthwhile"; the ablation quantifies it.
    l1_subthread_tracking: bool = False
    #: CPUs used inside parallel regions (None = all).  1 serializes the
    #: epochs on CPU 0, which is how the TLS-SEQ bar is produced: the
    #: TLS-transformed trace with its software overheads, run sequentially.
    region_cpus: int = None
    #: Pre-lower traces once per region (repro.trace.compile): coalesced
    #: super-records, interned per-line tuples, and the private/shared
    #: line classification behind the conflict-aware memory fast path.
    #: Byte-identical to interpreted replay — every cycle count and
    #: statistic matches; ``--no-compile-traces`` on the harness CLI (or
    #: False here) is the escape hatch / differential-testing axis.
    compile_traces: bool = True
    #: Extend compiled dispatch to *speculative* epochs: journaled
    #: super-record batches (rewound exactly on a mid-flight squash) and
    #: chained in-order dispatch.  Requires ``compile_traces``; False
    #: restricts batching to non-speculative epochs (PR-3 behavior) and
    #: is the baseline the speculative bench_speed scenario compares
    #: against.  Byte-identical either way.
    speculative_batches: bool = True
    #: Columnar bulk resolution of compiled load runs
    #: (repro.memory.columnar): the chained dispatch loop resolves the
    #: bulk-eligible prefix of each precompiled run of single-line loads
    #: — L1-resident hits the L2 already knows about — in one call
    #: against the caches' columnar tag mirrors, leaving misses and
    #: exposed loads to the scalar reference path.  Requires
    #: ``speculative_batches``; byte-identical either way.
    #: ``--no-columnar`` on the harness CLI (or False here) is the
    #: escape hatch / differential-testing axis.
    columnar: bool = True
    #: Columnar bulk resolution of compiled *store* runs: the chained
    #: dispatch loop commits the bulk-eligible prefix of each
    #: precompiled run of single-line private-line stores — resident
    #: only in the storing L1, hitting an epoch-owned L2 version — in
    #: one call, leaving installs, shared lines, and cross-L1
    #: invalidations to the scalar reference path.  Requires
    #: ``speculative_batches``; byte-identical either way.
    #: ``--no-columnar-stores`` on the harness CLI (or False here) is
    #: the escape hatch / differential-testing axis.
    columnar_stores: bool = True
    #: Opt-in cycle-level invariant checking (repro.verify.invariants):
    #: the machine validates protocol and memory-system invariants as it
    #: runs.  Costs simulation time; off for all paper numbers.
    check_invariants: bool = False
    #: Steps between full invariant sweeps when check_invariants is on
    #: (the O(1) commit-horizon check runs every step regardless).
    invariant_interval: int = 64
    #: The :class:`ExecutionMode` this config was derived for (set by
    #: :meth:`for_mode`), or None for hand-built configs.  Pure
    #: provenance for telemetry — the run-log report groups its Figure-5
    #: cycle breakdown by it — so it is excluded from equality/hash.
    mode_label: str = field(default=None, compare=False, repr=False)

    def l1_geometry(self) -> CacheGeometry:
        return CacheGeometry(
            size_bytes=self.l1_size,
            assoc=self.l1_assoc,
            line_size=self.line_size,
        )

    def l2_geometry(self) -> CacheGeometry:
        return CacheGeometry(
            size_bytes=self.l2_size,
            assoc=self.l2_assoc,
            line_size=self.line_size,
        )

    def with_tls(self, **kwargs) -> "MachineConfig":
        return replace(self, tls=replace(self.tls, **kwargs))

    @staticmethod
    def for_mode(mode: str, base: "MachineConfig" = None) -> "MachineConfig":
        """Derive the machine settings for a Figure 5 execution mode."""
        cfg = base or MachineConfig()
        if mode in (ExecutionMode.SEQUENTIAL, ExecutionMode.TLS_SEQ):
            # One CPU does all the work; the others idle (their idle time
            # appears in the Figure 5 breakdown exactly as in the paper).
            cfg = replace(cfg, region_cpus=1, speculation_enabled=False)
        elif mode == ExecutionMode.NO_SUBTHREAD:
            cfg = cfg.with_tls(max_subthreads=1)
        elif mode == ExecutionMode.BASELINE:
            pass
        elif mode == ExecutionMode.NO_SPECULATION:
            cfg = replace(cfg, speculation_enabled=False)
        else:
            raise ValueError(f"unknown execution mode {mode!r}")
        return replace(cfg, mode_label=mode)


def table1_text(config: MachineConfig = None) -> str:
    """Render the simulation parameters as the paper's Table 1."""
    cfg = config or MachineConfig()
    pipe = cfg.pipeline
    rows = [
        ("Pipeline Parameters", ""),
        ("Issue Width", str(pipe.issue_width)),
        ("Functional Units", f"{pipe.int_units} Int, {pipe.fp_units} FP, "
                             "1 Mem, 1 Branch"),
        ("Reorder Buffer Size", str(pipe.rob_entries)),
        ("Integer Multiply", f"{pipe.int_mul_latency} cycles"),
        ("Integer Divide", f"{pipe.int_div_latency} cycles"),
        ("All Other Integer", "1 cycle"),
        ("FP Divide", f"{pipe.fp_div_latency} cycles"),
        ("FP Square Root", f"{pipe.fp_sqrt_latency} cycles"),
        ("All Other FP", f"{pipe.fp_latency} cycles"),
        ("Branch Prediction",
         f"GShare ({pipe.branch_table_bytes // 1024}KB, "
         f"{pipe.branch_history_bits} history bits)"),
        ("Memory Parameters", ""),
        ("Cache Line Size", f"{cfg.line_size}B"),
        ("Instruction Cache", f"{cfg.l1_size // 1024}KB, "
                              f"{cfg.l1_assoc}-way set-assoc"),
        ("Data Cache", f"{cfg.l1_size // 1024}KB, "
                       f"{cfg.l1_assoc}-way set-assoc, 2 banks"),
        ("Unified Secondary Cache",
         f"{cfg.l2_size // (1024 * 1024)}MB, {cfg.l2_assoc}-way set-assoc, "
         f"{cfg.l2_banks} banks"),
        ("Speculative Victim Cache", f"{cfg.victim_entries} entry"),
        ("Crossbar Interconnect", "8B per cycle per bank"),
        ("Minimum Miss Latency to Secondary Cache",
         f"{cfg.l2_latency} cycles"),
        ("Minimum Miss Latency to Local Memory",
         f"{cfg.memory_latency} cycles"),
        ("Main Memory Bandwidth",
         f"1 access per {cfg.memory_gap} cycles"),
    ]
    width = max(len(name) for name, _ in rows)
    lines = []
    for name, value in rows:
        if not value:
            lines.append(f"--- {name} ---")
        else:
            lines.append(f"{name:<{width}}  {value}")
    return "\n".join(lines)
