"""Selection of the event-loop core: pure reference vs compiled twin.

The simulator's per-record event loop lives in
:mod:`repro.sim.engine_core` — a module deliberately written in the
mypyc/Cython-compilable subset of Python (module-level functions, no
closures over loop-mutated state, explicit locals).  The optional
``[speed]`` install extra AOT-compiles a *generated twin* of that file,
``repro/sim/engine_core_speed`` (an extension module built by
``REPRO_SPEED=1 pip install -e .[speed]`` — see ``setup.py``); the
``.py`` source of the twin is generated at build time and never checked
in, so the pure-Python module remains the single reference
implementation and the two can never drift.

:func:`select_engine_core` returns the module the machine should drive:
the compiled twin when importable, else the pure reference.  Setting
``REPRO_NO_COMPILED_ENGINE=1`` in the environment forces the pure
module even when the twin is built (the kill switch CI uses to prove
the fallback, and the escape hatch if a compiled build ever
misbehaves).  Selection happens per ``Machine`` construction, so tests
can flip the environment between machines.

Byte-identity is the hard invariant: both modules execute the identical
source, so every statistic of a run is independent of which one is
selected — enforced by the engine test suite, the fuzz ``--engine``
axis, and the CI ``compiled`` job's artifact ``cmp``.
"""

from __future__ import annotations

import os

#: Environment variable that forces the pure-Python event loop.
KILL_SWITCH = "REPRO_NO_COMPILED_ENGINE"


def select_engine_core():
    """The event-loop module to drive: compiled twin or pure reference."""
    from . import engine_core as pure

    if os.environ.get(KILL_SWITCH) == "1":
        return pure
    try:
        from . import engine_core_speed as compiled  # type: ignore
    except ImportError:
        return pure
    return compiled


def engine_kind(module=None) -> str:
    """``"compiled"`` or ``"pure"`` for a selected engine-core module.

    An AOT-built twin is an extension module (``__file__`` ends in a
    platform ``.so``/``.pyd`` suffix, or is absent entirely); the
    reference is the plain ``engine_core.py`` source.
    """
    if module is None:
        module = select_engine_core()
    fname = getattr(module, "__file__", "") or ""
    return "pure" if fname.endswith(".py") else "compiled"
