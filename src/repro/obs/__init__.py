"""Observability for the reproduction harness.

One package owns everything the harness knows about *how a run went*
(as opposed to what it computed):

* :mod:`repro.obs.atomicio` — crash-safe artifact writes (temp file +
  ``os.replace``) shared by every results/bench/trajectory writer;
* :mod:`repro.obs.manifest` — the run manifest attached to every
  artifact (config hash, trace-spec keys, seed, git SHA, versions,
  wall time, CPU count);
* :mod:`repro.obs.tracer` — structured JSONL span/counter/event
  tracing (``--trace-out run.jsonl``);
* :mod:`repro.obs.metrics` — the registry subsystems publish their
  end-of-run counters into;
* :mod:`repro.obs.progress` — live progress + per-worker heartbeats
  for parallel sweeps (``--progress``);
* :mod:`repro.obs.schema` — the run-log lint;
* :mod:`repro.obs.report` — ``python -m repro.harness report``.

Everything here is opt-in: with no ``--trace-out`` and no
``--progress`` the simulator and harness execute their original code
paths untouched.
"""

from .atomicio import (
    atomic_output_file,
    atomic_write_json,
    atomic_write_text,
)
from .manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    build_manifest,
    config_hash,
    finish_manifest,
    git_sha,
    main_command,
    manifest_path,
    write_manifest,
)
from .metrics import MetricsRegistry
from .progress import ProgressReporter, format_eta
from .report import render_report
from .schema import (
    JOURNAL_EVENTS,
    JOURNAL_TYPES,
    REQUIRED_BENCH_ENTRY_KEYS,
    REQUIRED_MANIFEST_KEYS,
    RunLogError,
    assert_valid_bench_trajectory,
    assert_valid_journal,
    assert_valid_predictor_block,
    assert_valid_run_log,
    assert_valid_sampler_block,
    lint_bench_trajectory,
    lint_journal,
    lint_predictor_block,
    lint_run_log,
    lint_sampler_block,
)
from .tracer import RECORD_TYPES, SpanTracer

__all__ = [
    "JOURNAL_EVENTS",
    "JOURNAL_TYPES",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "ProgressReporter",
    "RECORD_TYPES",
    "REQUIRED_BENCH_ENTRY_KEYS",
    "REQUIRED_MANIFEST_KEYS",
    "RunLogError",
    "SpanTracer",
    "assert_valid_bench_trajectory",
    "assert_valid_journal",
    "assert_valid_predictor_block",
    "assert_valid_run_log",
    "assert_valid_sampler_block",
    "atomic_output_file",
    "atomic_write_json",
    "atomic_write_text",
    "build_manifest",
    "config_hash",
    "finish_manifest",
    "format_eta",
    "git_sha",
    "lint_bench_trajectory",
    "lint_journal",
    "lint_predictor_block",
    "lint_run_log",
    "lint_sampler_block",
    "main_command",
    "manifest_path",
    "render_report",
    "write_manifest",
]
