"""Metrics registry: one named home for every end-of-run counter.

Before this module, finishing a simulation meant hand-copying ~20
counters from the engine, the L2, the L1s, and the pipelines into
``SimulationStats`` — an ad-hoc list that every new counter had to be
threaded through by hand (and that silently dropped anything forgotten).

Now each subsystem *publishes* its counters into a
:class:`MetricsRegistry` under a stable dotted name
(``engine.primary_violations``, ``l2.hits``, ``compile.fastpath_loads``,
…) and consumers pull a :meth:`~MetricsRegistry.snapshot`:

* ``Machine._collect_stats`` fills ``SimulationStats`` from the snapshot
  via the declarative ``SimulationStats.METRIC_SOURCES`` mapping;
* the span tracer emits the same names as ``counter`` records, so the
  run-log schema and the stats fields can never drift apart;
* ``python -m repro.harness report`` aggregates them back into the
  Figure-5 breakdown.

Providers are zero-cost until sampled: registration stores a callable,
and nothing is evaluated until ``snapshot()`` — which runs once per
simulation, never in the hot loop.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple, Union

Number = Union[int, float]
Provider = Callable[[], Number]


class MetricsRegistry:
    """Named counter/gauge providers, sampled together via snapshot()."""

    def __init__(self) -> None:
        self._providers: Dict[str, Provider] = {}

    def register(self, name: str, provider: Provider) -> None:
        """Publish ``provider`` under ``name`` (unique per registry)."""
        if name in self._providers:
            raise ValueError(f"metric {name!r} already registered")
        self._providers[name] = provider

    def register_many(
        self, providers: Iterable[Tuple[str, Provider]]
    ) -> None:
        for name, provider in providers:
            self.register(name, provider)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._providers))

    def snapshot(self) -> Dict[str, Number]:
        """Evaluate every provider; names in sorted order."""
        return {
            name: self._providers[name]()
            for name in sorted(self._providers)
        }

    def __len__(self) -> int:
        return len(self._providers)

    def __contains__(self, name: str) -> bool:
        return name in self._providers
