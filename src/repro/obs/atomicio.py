"""Atomic artifact writes shared by every file-producing subsystem.

An interrupted harness run must never leave a truncated ``results/*.json``,
bench artifact, or trace-cache entry behind — downstream tooling treats
those files as ground truth.  Every writer funnels through
:func:`atomic_output_file`: the content is written to a temp file in the
destination directory, **fsynced**, and moved into place with
``os.replace``, which is atomic on POSIX filesystems (and the same
pattern the trace cache has always used, now shared instead of
re-implemented per writer); the destination directory is then fsynced
so the rename itself is durable.

``os.replace`` alone only orders the rename against other *metadata*
operations — after a power loss, an un-fsynced temp file can be
replayed as empty or truncated even though the rename committed, which
is exactly the "truncated results/*.json" this module promises never to
leave behind.  The fsync pair (file before rename, directory after)
closes that hole; the persistent result store of :mod:`repro.service`
inherits the guarantee through this helper.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from typing import Any, Iterator, Union

PathLike = Union[str, "os.PathLike[str]"]


def _fsync_path(path: str) -> None:
    """fsync a file by path (the writer closed its own handle)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(directory: str) -> None:
    """fsync a directory so a just-committed rename survives power loss.

    Best-effort: directories cannot be opened for fsync on some
    platforms (notably Windows); there ``os.replace`` atomicity is all
    we can get and the rename's durability rides on the next metadata
    flush.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_output_file(path: PathLike) -> Iterator[str]:
    """Yield a temp path that replaces ``path`` atomically on success.

    The temp file lives in the destination directory so ``os.replace``
    never crosses filesystems.  Before the rename the temp file is
    fsynced (so the committed name can never point at truncated data
    after a crash) and after it the directory is fsynced (so the rename
    itself is durable).  On any exception the temp file is removed and
    ``path`` is left untouched (pre-existing content included).  Parent
    directories are created as needed.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path), suffix=".tmp"
    )
    os.close(fd)
    try:
        yield tmp
        _fsync_path(tmp)
        os.replace(tmp, path)
        _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomically write ``text`` to ``path``."""
    with atomic_output_file(path) as tmp:
        with open(tmp, "w", encoding=encoding) as fh:
            fh.write(text)


def atomic_write_json(
    path: PathLike,
    doc: Any,
    indent: int = 1,
    sort_keys: bool = True,
    trailing_newline: bool = True,
) -> None:
    """Atomically write ``doc`` as JSON to ``path``.

    ``trailing_newline=False`` reproduces the historical byte format of
    ``results/*.json`` (plain ``json.dump``), which CI compares with
    ``cmp`` across serial/parallel/interpreted runs.
    """
    text = json.dumps(doc, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    atomic_write_text(path, text)
