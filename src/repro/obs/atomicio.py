"""Atomic artifact writes shared by every file-producing subsystem.

An interrupted harness run must never leave a truncated ``results/*.json``,
bench artifact, or trace-cache entry behind — downstream tooling treats
those files as ground truth.  Every writer funnels through
:func:`atomic_output_file`: the content is written to a temp file in the
destination directory and moved into place with ``os.replace``, which is
atomic on POSIX filesystems (and the same pattern the trace cache has
always used, now shared instead of re-implemented per writer).
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from typing import Any, Iterator, Union

PathLike = Union[str, "os.PathLike[str]"]


@contextmanager
def atomic_output_file(path: PathLike) -> Iterator[str]:
    """Yield a temp path that replaces ``path`` atomically on success.

    The temp file lives in the destination directory so ``os.replace``
    never crosses filesystems.  On any exception the temp file is
    removed and ``path`` is left untouched (pre-existing content
    included).  Parent directories are created as needed.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path), suffix=".tmp"
    )
    os.close(fd)
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomically write ``text`` to ``path``."""
    with atomic_output_file(path) as tmp:
        with open(tmp, "w", encoding=encoding) as fh:
            fh.write(text)


def atomic_write_json(
    path: PathLike,
    doc: Any,
    indent: int = 1,
    sort_keys: bool = True,
    trailing_newline: bool = True,
) -> None:
    """Atomically write ``doc`` as JSON to ``path``.

    ``trailing_newline=False`` reproduces the historical byte format of
    ``results/*.json`` (plain ``json.dump``), which CI compares with
    ``cmp`` across serial/parallel/interpreted runs.
    """
    text = json.dumps(doc, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    atomic_write_text(path, text)
