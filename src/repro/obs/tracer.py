"""Structured JSONL span/event tracing for harness runs.

``SpanTracer`` writes one JSON object per line to a run log
(``--trace-out run.jsonl``), in four record types:

* ``manifest`` — the run manifest (always the first record);
* ``span`` — a named wall-clock interval (trace generation, trace
  compilation, one simulation job, a machine segment, an experiment),
  with ``t0``/``t1``/``dur`` in seconds relative to tracer start and the
  enclosing span's name as ``parent``;
* ``counter`` — a bag of named numeric values at a point in time (the
  per-job ``SimulationStats`` counters: cycle breakdown, protocol and
  cache counters, compiled-path telemetry);
* ``event`` — a point-in-time fact with free-form attributes (e.g. the
  hottest profiled dependence pairs of a job).

All timestamps come from ``time.perf_counter`` — monotonic by
construction, so an NTP step mid-run can never produce a negative span.
Records carry a strictly increasing ``seq`` so truncation and reordering
are detectable; :mod:`repro.obs.schema` lints the whole file.

Tracing is strictly opt-in.  Every producer call site is guarded by
``tracer is not None``, so a run without ``--trace-out`` executes the
exact pre-observability code path (zero records, zero overhead).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Record types a run log may contain (shared with the schema lint).
RECORD_TYPES = ("manifest", "span", "counter", "event")


class SpanTracer:
    """Writes spans/counters/events as JSONL; see the module docstring."""

    def __init__(self, path, manifest: Optional[Dict[str, Any]] = None,
                 autoflush: bool = False):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._clock = time.perf_counter
        self._t0 = self._clock()
        self._seq = 0
        self._stack: List[str] = []
        self._closed = False
        #: Flush after every record.  The sweep service streams a live
        #: run log to ``watch`` subscribers, which only works if each
        #: record is visible as soon as it is written; batch runs keep
        #: the default (buffered) behavior.
        self.autoflush = autoflush
        if manifest is not None:
            self._write({"type": "manifest", "manifest": manifest})

    # -- plumbing ------------------------------------------------------

    def now(self) -> float:
        """Seconds since tracer start (monotonic)."""
        return round(self._clock() - self._t0, 6)

    def _write(self, record: Dict[str, Any]) -> None:
        if self._closed:
            return
        record["seq"] = self._seq
        self._seq += 1
        self._fh.write(json.dumps(record, sort_keys=True, default=str))
        self._fh.write("\n")
        if self.autoflush:
            self._fh.flush()

    # -- producers -----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Record the enclosed block as a span named ``name``."""
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        t0 = self.now()
        try:
            yield
        finally:
            self._stack.pop()
            t1 = self.now()
            self._write({
                "type": "span",
                "name": name,
                "t0": t0,
                "t1": t1,
                "dur": round(t1 - t0, 6),
                "parent": parent,
                "attrs": attrs,
            })

    def counter(self, name: str, values: Dict[str, float],
                **attrs: Any) -> None:
        """Record a bag of named numeric values."""
        self._write({
            "type": "counter",
            "name": name,
            "t": self.now(),
            "values": values,
            "attrs": attrs,
        })

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event with free-form attributes."""
        self._write({
            "type": "event",
            "name": name,
            "t": self.now(),
            "attrs": attrs,
        })

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._closed:
            self._fh.flush()
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "SpanTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
