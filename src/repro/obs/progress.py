"""Live progress + heartbeat reporting for job pools.

``ProgressReporter`` renders a one-line status for a running job list —
jobs done/total, throughput, ETA — plus a per-worker heartbeat view so a
hung worker is visible instead of silently stalling the whole sweep:
each worker stamps ``(job label, monotonic time)`` into a shared mapping
when it picks up a job, and the parent flags any worker whose last
heartbeat is older than ``stall_after`` seconds.

Progress is opt-in (harness ``--progress``; off by default so CI logs
stay clean) and rendered to ``stderr`` at most once per ``interval``
seconds.  All arithmetic uses monotonic clocks — an NTP step cannot
produce a negative ETA or a phantom stall.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, TextIO, Tuple

#: A worker heartbeat: (current job label, monotonic timestamp).
Heartbeat = Tuple[str, float]


def format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Rate-limited progress/heartbeat rendering for a job list."""

    def __init__(
        self,
        total: int,
        label: str = "jobs",
        stream: Optional[TextIO] = None,
        interval: float = 1.0,
        stall_after: float = 30.0,
        clock=time.monotonic,
    ):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.stall_after = stall_after
        self._clock = clock
        self._start = clock()
        self._last_print = -float("inf")
        self.done = 0
        self._heartbeats: Dict[int, Heartbeat] = {}

    # -- updates -------------------------------------------------------

    def set_done(self, done: int) -> None:
        self.done = done

    def job_done(self, n: int = 1) -> None:
        self.done += n

    def observe_heartbeats(self, heartbeats: Dict[int, Heartbeat]) -> None:
        """Adopt the latest worker heartbeat mapping (worker id -> beat)."""
        self._heartbeats = dict(heartbeats)

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        now = self._clock()
        elapsed = max(1e-9, now - self._start)
        rate = self.done / elapsed
        if 0 < self.done < self.total and rate > 0:
            eta = f" eta {format_eta((self.total - self.done) / rate)}"
        else:
            eta = ""
        line = (
            f"[{self.label} {self.done}/{self.total}"
            f" {rate:.2f}/s{eta}]"
        )
        beats = []
        for worker in sorted(self._heartbeats):
            job, stamp = self._heartbeats[worker]
            age = max(0.0, now - stamp)
            flag = " STALLED?" if age > self.stall_after else ""
            beats.append(f"w{worker}: {job} ({age:.0f}s ago){flag}")
        if beats:
            line += " " + " | ".join(beats)
        return line

    def maybe_render(self, force: bool = False) -> None:
        """Print the status line, at most once per ``interval`` seconds."""
        now = self._clock()
        if not force and now - self._last_print < self.interval:
            return
        self._last_print = now
        print(self.render(), file=self.stream, flush=True)

    def finish(self) -> None:
        elapsed = self._clock() - self._start
        print(
            f"[{self.label} {self.done}/{self.total} done "
            f"in {elapsed:.1f}s]",
            file=self.stream, flush=True,
        )
