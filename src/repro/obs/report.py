"""Terminal summary of a JSONL run log.

``python -m repro.harness report run.jsonl`` renders, from a traced run:

* the manifest header (who/what/when produced the run);
* the top wall-clock spans, grouped by name — where the harness spent
  its time (trace generation vs compilation vs simulation);
* a Figure-5-style cycle breakdown aggregated over every simulated job's
  counter record — the same categories, summed the same way the paper
  sums CPU-cycles;
* interval estimates from any sampled experiments in the run (the
  ``sampler.estimates`` events carry params, coverage, and CIs);
* the hottest profiled (load PC, store PC) dependence pairs by failed
  cycles — the §3.1 profiler output that tells the programmer which
  dependence to tune next;
* protocol/cache counter totals.

The report consumes only the run log; it does not re-run anything, so it
reconstructs a finished (even crashed) run after the fact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: Figure 5 legend order (matches repro.harness.figure5.CATEGORY_ORDER).
CATEGORY_ORDER = (
    "idle", "failed", "sync", "cache_miss", "tls_overhead", "busy",
)

#: Counter totals worth surfacing in the summary table.
TOTAL_COUNTERS = (
    "engine.primary_violations",
    "engine.secondary_violations",
    "engine.secondary_rewinds_avoided",
    "engine.subthreads_started",
    "engine.epochs_committed",
    "machine.deadlock_breaks",
    "l1.hits",
    "l1.misses",
    "l2.hits",
    "l2.misses",
    "l2.victim_spills",
    "l2.overflow_squashes",
    "compile.batched_records",
    "compile.fastpath_loads",
    "compile.fastpath_stores",
    "compile.private_line_stores",
    "compile.columnar_batches",
    "compile.columnar_accesses",
    "compile.columnar_residue",
)


def read_run_log(path) -> List[dict]:
    """All records of a JSONL run log, in file order."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _manifest_of(records: List[dict]) -> Optional[dict]:
    for rec in records:
        if rec.get("type") == "manifest":
            manifest = rec.get("manifest")
            if isinstance(manifest, dict):
                return manifest
    return None


def _span_groups(records: List[dict]) -> Dict[str, Dict[str, float]]:
    groups: Dict[str, Dict[str, float]] = {}
    for rec in records:
        if rec.get("type") != "span":
            continue
        g = groups.setdefault(
            rec["name"], {"count": 0, "total": 0.0, "max": 0.0}
        )
        g["count"] += 1
        g["total"] += rec["dur"]
        g["max"] = max(g["max"], rec["dur"])
    return groups


def _sum_counters(records: List[dict]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for rec in records:
        if rec.get("type") != "counter":
            continue
        for key, value in rec.get("values", {}).items():
            totals[key] = totals.get(key, 0.0) + value
    return totals


def _mode_cycle_groups(records: List[dict]) -> List[Tuple[str, Dict[str, float]]]:
    """Per-execution-mode ``cycles.*`` totals, in Figure-5 mode order.

    A run log typically mixes jobs from several execution modes (the
    five Figure-5 bars); summing their cycle breakdowns together is
    meaningless — an idle-heavy sequential bar would swamp the parallel
    bars.  Jobs whose counter record carries no ``mode`` attribute (old
    logs, hand-built configs) group under ``"(unlabeled)"``.
    """
    groups: Dict[str, Dict[str, float]] = {}
    for rec in records:
        if rec.get("type") != "counter":
            continue
        values = rec.get("values", {})
        if not any(k.startswith("cycles.") for k in values):
            continue
        mode = rec.get("attrs", {}).get("mode") or "(unlabeled)"
        totals = groups.setdefault(mode, {})
        for key, value in values.items():
            if key.startswith("cycles."):
                totals[key] = totals.get(key, 0.0) + value
    # Figure-5 order first, anything else (ablation modes, unlabeled)
    # after in name order.
    known = (
        "sequential", "tls_seq", "no_subthread", "baseline",
        "no_speculation",
    )
    ordered = [m for m in known if m in groups]
    ordered += sorted(m for m in groups if m not in known)
    return [(m, groups[m]) for m in ordered]


def _dependence_totals(
    records: List[dict],
) -> List[Tuple[Any, Any, float, int]]:
    pairs: Dict[Tuple[Any, Any], List[float]] = {}
    for rec in records:
        if rec.get("type") != "event" or rec.get("name") != "sim.dependences":
            continue
        for entry in rec.get("attrs", {}).get("pairs", []):
            load_pc, store_pc, failed, violations = entry[:4]
            agg = pairs.setdefault((load_pc, store_pc), [0.0, 0])
            agg[0] += failed
            agg[1] += violations
    ranked = [
        (load_pc, store_pc, failed, violations)
        for (load_pc, store_pc), (failed, violations) in pairs.items()
    ]
    ranked.sort(key=lambda entry: entry[2], reverse=True)
    return ranked


def _sampler_events(records: List[dict]) -> List[dict]:
    """``sampler.estimates`` event payloads, in file order.

    Sampled experiments (``--sample-rate`` / the ``huge`` experiment)
    emit one event each carrying the sampler params, achieved record
    coverage, and every metric's interval estimate.
    """
    return [
        rec.get("attrs", {})
        for rec in records
        if rec.get("type") == "event"
        and rec.get("name") == "sampler.estimates"
    ]


def _estimate_cell(estimate: Optional[dict], fmt: str) -> str:
    if not estimate:
        return "-"
    half = (estimate["high"] - estimate["low"]) / 2.0
    return f"{estimate['point']:{fmt}} ±{half:{fmt}}"


def _render_sampler_section(event: dict, render_table) -> str:
    block = event.get("sampler", {})
    params = block.get("params", {})
    coverage = block.get("achieved_coverage")
    header = (
        f"sampled run ({event.get('experiment', '?')}): "
        f"rate {params.get('rate')}  strata {params.get('strata')}  "
        f"seed {params.get('seed')}  warmup {params.get('warmup')}"
    )
    if coverage is not None:
        header += (
            f"  coverage {coverage:.1%}"
            f" ({block.get('transactions_sampled')}/"
            f"{block.get('transactions_total')} txns)"
        )
    rows = []
    for key, metrics in sorted(block.get("estimates", {}).items()):
        rows.append([
            key,
            _estimate_cell(metrics.get("total_cycles"), ".4g"),
            _estimate_cell(metrics.get("speedup"), ".2f"),
        ])
    speedup = block.get("speedup")
    if speedup is not None:
        rows.append(["(paired speedup)", "-",
                     _estimate_cell(speedup, ".2f")])
    table = render_table(
        ["bar", "total cycles (95% CI)", "speedup (95% CI)"],
        rows,
        title="Sampled estimates (full set in the manifest sidecar)",
    )
    return header + "\n" + table


def _predictor_events(records: List[dict]) -> List[dict]:
    """``predictor.estimates`` event payloads, in file order.

    Pruned sweeps (``--prune``) emit one event each carrying the
    planning params, dispatch accounting, and predicted-vs-simulated
    error per metric.
    """
    return [
        rec.get("attrs", {})
        for rec in records
        if rec.get("type") == "event"
        and rec.get("name") == "predictor.estimates"
    ]


def _render_predictor_section(event: dict, render_table) -> str:
    block = event.get("predictor", {})
    params = block.get("params", {})
    header = (
        f"pruned sweep ({event.get('experiment', '?')}): "
        f"dispatched {block.get('simulated_cells')}/"
        f"{block.get('grid_cells')} cells "
        f"({block.get('dispatch_fraction', 0.0):.0%})  "
        f"top-k {params.get('top_k')}  "
        f"validation {params.get('validation')}"
    )
    rows = [
        [
            metric,
            f"{entry.get('mae', 0.0):.4f}",
            f"{entry.get('max_abs', 0.0):.4f}",
            int(entry.get("cells", 0)),
            f"{entry.get('mae_all_simulated', 0.0):.4f}",
        ]
        for metric, entry in sorted(block.get("errors", {}).items())
    ]
    table = render_table(
        ["metric", "MAE (validation)", "max abs", "cells",
         "MAE (all simulated)"],
        rows,
        title="Predictor honesty (predicted vs simulated)",
    )
    return header + "\n" + table


def _pc_text(pc: Any) -> str:
    if pc is None:
        return "?"
    if isinstance(pc, int):
        return hex(pc)
    return str(pc)


def render_report(path, top_spans: int = 12, top_pairs: int = 10) -> str:
    """Render the full terminal summary for a run log."""
    from ..harness.report import render_stacked_bars, render_table

    records = read_run_log(path)
    sections: List[str] = []

    manifest = _manifest_of(records)
    header = [f"run log: {path} ({len(records)} records)"]
    if manifest is not None:
        sha = manifest.get("git_sha")
        header.append(
            "manifest: config "
            f"{manifest.get('config_hash')}  seed {manifest.get('seed')}"
            f"  git {sha[:12] if sha else '?'}"
            f"  python {manifest.get('python_version')}"
            f"  cpus {manifest.get('cpu_count')}"
        )
        wall = manifest.get("wall_seconds")
        traces = manifest.get("trace_spec_keys") or []
        header.append(
            f"wall time: {wall if wall is not None else '?'}s"
            f"  traces: {len(traces)}"
        )
    else:
        header.append("manifest: MISSING (log did not start cleanly?)")
    sections.append("\n".join(header))

    groups = _span_groups(records)
    if groups:
        ranked = sorted(
            groups.items(), key=lambda kv: kv[1]["total"], reverse=True
        )[:top_spans]
        sections.append(render_table(
            ["span", "count", "total s", "mean s", "max s"],
            [
                [
                    name,
                    int(g["count"]),
                    g["total"],
                    g["total"] / g["count"],
                    g["max"],
                ]
                for name, g in ranked
            ],
            title="Top spans (wall clock)",
            float_fmt="{:.4f}",
        ))
    else:
        sections.append("(no spans recorded)")

    totals = _sum_counters(records)
    mode_groups = [
        (mode, cycles, sum(
            cycles.get(f"cycles.{cat}", 0.0) for cat in CATEGORY_ORDER
        ))
        for mode, cycles in _mode_cycle_groups(records)
    ]
    mode_groups = [g for g in mode_groups if g[2] > 0]
    if mode_groups:
        labels = [mode for mode, _, _ in mode_groups]
        fractions = [
            {
                cat: cycles.get(f"cycles.{cat}", 0.0) / total
                for cat in CATEGORY_ORDER
            }
            for _, cycles, total in mode_groups
        ]
        sections.append(render_stacked_bars(
            labels, fractions, CATEGORY_ORDER,
            title="Cycle breakdown (Figure 5 categories, per mode)",
        ))
        sections.append(render_table(
            ["mode", "category", "cpu-cycles", "fraction"],
            [
                [mode, cat, cycles.get(f"cycles.{cat}", 0.0), frac[cat]]
                for (mode, cycles, _), frac in zip(mode_groups, fractions)
                for cat in CATEGORY_ORDER
            ],
        ))

    for event in _sampler_events(records):
        sections.append(_render_sampler_section(event, render_table))

    for event in _predictor_events(records):
        sections.append(_render_predictor_section(event, render_table))

    ranked_pairs = _dependence_totals(records)[:top_pairs]
    if ranked_pairs:
        sections.append(render_table(
            ["load PC", "store PC", "failed cycles", "violations"],
            [
                [_pc_text(load), _pc_text(store), failed, int(violations)]
                for load, store, failed, violations in ranked_pairs
            ],
            title="Hottest dependences (load PC -> store PC)",
        ))

    counter_rows = [
        [name, int(totals[name])]
        for name in TOTAL_COUNTERS
        if name in totals
    ]
    if counter_rows:
        sections.append(render_table(
            ["counter", "total"], counter_rows,
            title="Counter totals",
        ))

    return "\n\n".join(sections)
