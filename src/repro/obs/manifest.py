"""Run manifests: what produced this artifact, exactly.

Every ``results/*.json`` and bench artifact gets a manifest recording the
full provenance of the run — resolved configuration (and its hash), the
content-hash keys of every trace it replayed, the seed, the git SHA,
package/Python versions, wall time, and host CPU count.  With it, any
number in any artifact can be traced back to the code and inputs that
produced it, which is what makes the paper's profile-tune-rerun loop
(and our BENCH trajectory) auditable.

Manifests ride as a sidecar file (``figure5.json`` →
``figure5.manifest.json``) rather than embedded in the artifact: result
files stay byte-identical across serial/parallel/interpreted runs (CI
``cmp``-gates that), while the manifest carries the run-varying facts
such as wall time.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence

from .atomicio import atomic_write_json

MANIFEST_FORMAT = "repro-run-manifest"
MANIFEST_VERSION = 1


def config_hash(config: Any) -> str:
    """Stable short hash of a JSON-able configuration document."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def git_sha() -> Optional[str]:
    """HEAD commit of the enclosing checkout, or None outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def build_manifest(
    command: Optional[Sequence[str]] = None,
    config: Any = None,
    seed: Optional[int] = None,
    trace_spec_keys: Optional[Iterable[str]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A fresh manifest for a run that is starting now.

    ``created_unix`` is deliberately wall-clock (it identifies *when*,
    for humans); every duration in the manifest comes from monotonic
    clocks via :func:`finish_manifest`.
    """
    from .. import __version__

    manifest: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "created_unix": round(time.time(), 3),
        "command": list(command) if command is not None else None,
        "seed": seed,
        "config": config,
        "config_hash": config_hash(config),
        "trace_spec_keys": sorted(trace_spec_keys or []),
        "git_sha": git_sha(),
        "package_version": __version__,
        "python_version": platform.python_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "cpu_count": os.cpu_count() or 1,
        "wall_seconds": None,
    }
    if extra:
        manifest.update(extra)
    return manifest


def finish_manifest(
    manifest: Dict[str, Any],
    wall_seconds: float,
    trace_spec_keys: Optional[Iterable[str]] = None,
) -> Dict[str, Any]:
    """A completed copy of ``manifest`` with the run's final facts.

    Returns a new dict so one in-flight manifest can be finalized
    repeatedly (e.g. once per exported artifact of an ``all`` run).
    """
    done = dict(manifest)
    done["wall_seconds"] = round(wall_seconds, 3)
    if trace_spec_keys is not None:
        done["trace_spec_keys"] = sorted(trace_spec_keys)
    return done


def manifest_path(artifact_path) -> Path:
    """Sidecar manifest path for an artifact (``x.json`` → ``x.manifest.json``)."""
    artifact_path = Path(artifact_path)
    return artifact_path.with_name(artifact_path.stem + ".manifest.json")


def write_manifest(artifact_path, manifest: Dict[str, Any]) -> Path:
    """Atomically write the sidecar manifest for ``artifact_path``."""
    path = manifest_path(artifact_path)
    atomic_write_json(path, manifest)
    return path


def main_command(argv: Optional[Sequence[str]]) -> list:
    """Reconstruct the harness command line for the manifest."""
    tail = list(argv) if argv is not None else list(sys.argv[1:])
    return ["python", "-m", "repro.harness"] + tail
