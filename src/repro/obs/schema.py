"""Run-log schema lint (``repro.verify.lint`` style, for JSONL traces).

A run log that violates the tracer's discipline would silently corrupt
every downstream consumer (``report``, trajectory tooling, dashboards).
This lint checks the whole file *structurally*, the same way the trace
linter checks workload traces before simulation:

1. **Line well-formedness** — every line parses as a JSON object with a
   known ``type`` (manifest / span / counter / event) and a ``seq``
   field that increases strictly from 0 (truncation and interleaved
   writers are both detectable).
2. **Manifest first** — the first record is a manifest carrying the
   required provenance keys (format, config hash, versions, CPU count).
3. **Span sanity** — ``0 <= t0 <= t1``, ``dur == t1 - t0`` (to rounding),
   string name, dict attrs.  Monotonic timestamps make negative spans a
   hard error, not a "clock skew" shrug.
4. **Counter/event sanity** — counters carry a dict of finite numeric
   values; events carry dict attrs.

Use :func:`lint_run_log` for the issue list, or
:func:`assert_valid_run_log` to raise :class:`RunLogError` (CI style).
"""

from __future__ import annotations

import json
import math
from typing import Any, List

from .manifest import MANIFEST_FORMAT
from .tracer import RECORD_TYPES

#: Keys every manifest record must carry.
REQUIRED_MANIFEST_KEYS = (
    "format",
    "version",
    "config_hash",
    "package_version",
    "python_version",
    "cpu_count",
)

#: Absolute slack allowed between ``dur`` and ``t1 - t0`` (rounding).
DUR_TOLERANCE = 2e-6


class RunLogError(AssertionError):
    """A run log violates the tracer's JSONL schema."""


def _is_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _lint_span(line_no: int, rec: dict, issues: List[str]) -> None:
    if not isinstance(rec.get("name"), str) or not rec.get("name"):
        issues.append(f"line {line_no}: span without a string name")
    for key in ("t0", "t1", "dur"):
        if not _is_number(rec.get(key)):
            issues.append(
                f"line {line_no}: span {rec.get('name')!r} has "
                f"non-numeric {key}"
            )
            return
    t0, t1, dur = rec["t0"], rec["t1"], rec["dur"]
    if t0 < 0:
        issues.append(
            f"line {line_no}: span {rec['name']!r} starts before the "
            f"tracer epoch (t0={t0})"
        )
    if t1 < t0:
        issues.append(
            f"line {line_no}: span {rec['name']!r} ends before it "
            f"starts (t0={t0}, t1={t1})"
        )
    if abs(dur - (t1 - t0)) > DUR_TOLERANCE:
        issues.append(
            f"line {line_no}: span {rec['name']!r} dur={dur} does not "
            f"match t1-t0={t1 - t0}"
        )
    parent = rec.get("parent")
    if parent is not None and not isinstance(parent, str):
        issues.append(
            f"line {line_no}: span {rec['name']!r} parent must be a "
            "string or null"
        )
    if not isinstance(rec.get("attrs", {}), dict):
        issues.append(
            f"line {line_no}: span {rec['name']!r} attrs must be a dict"
        )


def _lint_counter(line_no: int, rec: dict, issues: List[str]) -> None:
    if not isinstance(rec.get("name"), str) or not rec.get("name"):
        issues.append(f"line {line_no}: counter without a string name")
    values = rec.get("values")
    if not isinstance(values, dict):
        issues.append(
            f"line {line_no}: counter {rec.get('name')!r} needs a dict "
            "of values"
        )
        return
    for key, value in values.items():
        if not _is_number(value):
            issues.append(
                f"line {line_no}: counter {rec.get('name')!r} value "
                f"{key!r} is not a finite number: {value!r}"
            )


def _lint_event(line_no: int, rec: dict, issues: List[str]) -> None:
    if not isinstance(rec.get("name"), str) or not rec.get("name"):
        issues.append(f"line {line_no}: event without a string name")
    if not isinstance(rec.get("attrs", {}), dict):
        issues.append(
            f"line {line_no}: event {rec.get('name')!r} attrs must be "
            "a dict"
        )


def lint_run_log(path) -> List[str]:
    """Lint a JSONL run log; returns the (possibly empty) issue list."""
    issues: List[str] = []
    records: List[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                issues.append(f"line {line_no}: blank line")
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                issues.append(f"line {line_no}: invalid JSON: {exc}")
                continue
            if not isinstance(rec, dict):
                issues.append(f"line {line_no}: record is not an object")
                continue
            records.append(rec)
            rtype = rec.get("type")
            if rtype not in RECORD_TYPES:
                issues.append(
                    f"line {line_no}: unknown record type {rtype!r}"
                )
                continue
            seq = rec.get("seq")
            if not isinstance(seq, int) or seq != len(records) - 1:
                issues.append(
                    f"line {line_no}: seq {seq!r} is not the expected "
                    f"{len(records) - 1} (truncated or reordered log?)"
                )
            if rtype == "span":
                _lint_span(line_no, rec, issues)
            elif rtype == "counter":
                _lint_counter(line_no, rec, issues)
            elif rtype == "event":
                _lint_event(line_no, rec, issues)
    if not records:
        issues.append("run log is empty")
        return issues
    first = records[0]
    if first.get("type") != "manifest":
        issues.append("first record must be the run manifest")
    else:
        manifest = first.get("manifest")
        if not isinstance(manifest, dict):
            issues.append("manifest record carries no manifest object")
        else:
            if manifest.get("format") != MANIFEST_FORMAT:
                issues.append(
                    f"manifest format is {manifest.get('format')!r}, "
                    f"expected {MANIFEST_FORMAT!r}"
                )
            for key in REQUIRED_MANIFEST_KEYS:
                if key not in manifest:
                    issues.append(f"manifest is missing key {key!r}")
    return issues


#: Keys a sampler manifest block's ``params`` must carry (the
#: ``--sample-*`` flags plus the windows that shaped the estimates).
REQUIRED_SAMPLER_PARAM_KEYS = (
    "rate", "strata", "seed", "warmup", "functional_window", "guard",
)

#: Keys every serialized interval estimate must carry.
REQUIRED_ESTIMATE_KEYS = ("point", "low", "high", "std_error", "method")


def lint_sampler_block(block: Any) -> List[str]:
    """Structurally lint a manifest's ``sampler`` section.

    Sampled experiments attach their params, achieved record coverage,
    and per-metric interval estimates to the manifest sidecar; CI and
    the golden tests lint that block with this the same way run logs
    are linted — malformed estimates would silently break regression
    tooling that trusts ``point``/``low``/``high``.
    """
    issues: List[str] = []
    if not isinstance(block, dict):
        return [f"sampler block is not an object: {type(block).__name__}"]
    params = block.get("params")
    if not isinstance(params, dict):
        issues.append("sampler block has no params object")
    else:
        for key in REQUIRED_SAMPLER_PARAM_KEYS:
            if not _is_number(params.get(key)):
                issues.append(
                    f"sampler params[{key!r}] is not a finite number: "
                    f"{params.get(key)!r}"
                )
    coverage = block.get("achieved_coverage")
    if coverage is not None and (
        not _is_number(coverage) or coverage < 0
    ):
        issues.append(
            f"achieved_coverage must be a non-negative number, got "
            f"{coverage!r}"
        )
    estimates = block.get("estimates")
    if not isinstance(estimates, dict) or not estimates:
        issues.append("sampler block has no estimates")
        estimates = {}
    for bar, metrics in estimates.items():
        if not isinstance(metrics, dict) or not metrics:
            issues.append(f"estimates[{bar!r}] is not a metric dict")
            continue
        for metric, est in metrics.items():
            where = f"estimates[{bar!r}][{metric!r}]"
            if not isinstance(est, dict):
                issues.append(f"{where} is not an estimate object")
                continue
            for key in REQUIRED_ESTIMATE_KEYS:
                if key == "method":
                    if not isinstance(est.get(key), str):
                        issues.append(f"{where} has no method string")
                elif not _is_number(est.get(key)):
                    issues.append(
                        f"{where}[{key!r}] is not a finite number: "
                        f"{est.get(key)!r}"
                    )
            if all(_is_number(est.get(k)) for k in
                   ("point", "low", "high")):
                if not (est["low"] <= est["point"] <= est["high"]):
                    issues.append(
                        f"{where}: point {est['point']} outside its own "
                        f"interval [{est['low']}, {est['high']}]"
                    )
            if _is_number(est.get("std_error")) and est["std_error"] < 0:
                issues.append(f"{where}: negative std_error")
    return issues


def assert_valid_sampler_block(block: Any, max_shown: int = 20) -> None:
    """Lint a sampler manifest block; raise :class:`RunLogError`."""
    issues = lint_sampler_block(block)
    if issues:
        shown = issues[:max_shown]
        text = f"{len(issues)} sampler-block schema issue(s):\n  " + \
            "\n  ".join(shown)
        if len(issues) > len(shown):
            text += f"\n  ... and {len(issues) - len(shown)} more"
        raise RunLogError(text)


#: Keys a predictor manifest block's ``params`` must carry (the
#: ``--prune`` knobs plus the profile geometry and the violation-cost
#: model coefficients that shaped the ranking).
REQUIRED_PREDICTOR_PARAM_KEYS = (
    "top_k", "validation", "l1_lines", "line_size", "n_cpus",
    "retry_gain", "retry_floor", "far_dep_weight", "violation_penalty",
)

#: Keys every per-metric predictor error entry must carry.
REQUIRED_PREDICTOR_ERROR_KEYS = (
    "mae", "max_abs", "cells", "mae_all_simulated",
)


def lint_predictor_block(block: Any) -> List[str]:
    """Structurally lint a manifest's ``predictor`` section.

    Pruned sweeps (``--prune``) attach their planning params, dispatch
    accounting, and predicted-vs-simulated error per metric to the
    manifest sidecar; CI and the golden tests lint that block the same
    way sampler blocks are linted — a malformed or non-finite error
    entry would silently disarm the honesty gate that makes pruning
    trustworthy.
    """
    issues: List[str] = []
    if not isinstance(block, dict):
        return [
            f"predictor block is not an object: {type(block).__name__}"
        ]
    params = block.get("params")
    if not isinstance(params, dict):
        issues.append("predictor block has no params object")
    else:
        for key in REQUIRED_PREDICTOR_PARAM_KEYS:
            if not _is_number(params.get(key)):
                issues.append(
                    f"predictor params[{key!r}] is not a finite "
                    f"number: {params.get(key)!r}"
                )
    for key in ("grid_cells", "simulated_cells"):
        value = block.get(key)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            issues.append(
                f"predictor {key} must be a non-negative int, got "
                f"{value!r}"
            )
    fraction = block.get("dispatch_fraction")
    if not _is_number(fraction) or not (0.0 <= fraction <= 1.0):
        issues.append(
            f"dispatch_fraction must be a number in [0, 1], got "
            f"{fraction!r}"
        )
    errors = block.get("errors")
    if not isinstance(errors, dict) or not errors:
        issues.append("predictor block has no errors")
        errors = {}
    if errors and "l2_miss_ratio" not in errors:
        issues.append("predictor errors carry no l2_miss_ratio entry")
    for metric, entry in errors.items():
        where = f"errors[{metric!r}]"
        if not isinstance(entry, dict) or not entry:
            issues.append(f"{where} is not an error dict")
            continue
        for key, value in entry.items():
            if not _is_number(value):
                issues.append(
                    f"{where}[{key!r}] is not a finite number: "
                    f"{value!r}"
                )
        if metric == "l2_miss_ratio":
            for key in REQUIRED_PREDICTOR_ERROR_KEYS:
                if key not in entry:
                    issues.append(f"{where} is missing key {key!r}")
        for key in ("mae", "max_abs", "mae_all_simulated"):
            if _is_number(entry.get(key)) and entry[key] < 0:
                issues.append(f"{where}: negative {key}")
    return issues


def assert_valid_predictor_block(block: Any, max_shown: int = 20) -> None:
    """Lint a predictor manifest block; raise :class:`RunLogError`."""
    issues = lint_predictor_block(block)
    if issues:
        shown = issues[:max_shown]
        text = f"{len(issues)} predictor-block schema issue(s):\n  " + \
            "\n  ".join(shown)
        if len(issues) > len(shown):
            text += f"\n  ... and {len(issues) - len(shown)} more"
        raise RunLogError(text)


#: Record types the service journal may contain.
JOURNAL_TYPES = ("service", "sweep", "job")

#: Legal ``event`` values per journal record type (the sweep/job state
#: machines of :mod:`repro.service`).
JOURNAL_EVENTS = {
    "service": ("start", "recovered", "drain", "stop"),
    "sweep": ("accepted", "running", "done", "failed", "interrupted"),
    "job": ("dispatch", "store_hit", "done", "crash", "retry",
            "quarantine"),
}


def lint_journal(path) -> List[str]:
    """Structurally lint a service journal (JSONL, fsynced appends).

    The journal is the service's crash-safety record: every sweep and
    job state transition is appended (and fsynced) before the service
    acts on it, so recovery after a crash replays the journal to learn
    which sweeps were in flight.  The lint enforces the append
    discipline the same way :func:`lint_run_log` does for run logs:

    1. every line parses as a JSON object with a known ``type`` and a
       ``seq`` increasing strictly from 0 (a rewritten or interleaved
       journal is detectable);
    2. every record names a known ``event`` for its type and carries a
       numeric ``t`` wall-clock stamp;
    3. ``sweep``/``job`` records name their sweep id; ``job`` records
       carry a job label and an attempt count >= 1.
    """
    issues: List[str] = []
    n_records = 0
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                issues.append(f"line {line_no}: blank line")
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                issues.append(f"line {line_no}: invalid JSON: {exc}")
                continue
            if not isinstance(rec, dict):
                issues.append(f"line {line_no}: record is not an object")
                continue
            n_records += 1
            rtype = rec.get("type")
            if rtype not in JOURNAL_TYPES:
                issues.append(
                    f"line {line_no}: unknown journal record type "
                    f"{rtype!r}"
                )
                continue
            seq = rec.get("seq")
            if not isinstance(seq, int) or seq != n_records - 1:
                issues.append(
                    f"line {line_no}: seq {seq!r} is not the expected "
                    f"{n_records - 1} (truncated or rewritten journal?)"
                )
            if not _is_number(rec.get("t")):
                issues.append(
                    f"line {line_no}: {rtype} record has no numeric "
                    "wall-clock stamp 't'"
                )
            event = rec.get("event")
            if event not in JOURNAL_EVENTS[rtype]:
                issues.append(
                    f"line {line_no}: unknown {rtype} event {event!r}"
                )
            if rtype in ("sweep", "job"):
                if not isinstance(rec.get("sweep"), str) \
                        or not rec.get("sweep"):
                    issues.append(
                        f"line {line_no}: {rtype} record names no sweep"
                    )
            if rtype == "job":
                if not isinstance(rec.get("job"), str) \
                        or not rec.get("job"):
                    issues.append(
                        f"line {line_no}: job record has no job label"
                    )
                attempt = rec.get("attempt")
                if not isinstance(attempt, int) or attempt < 1:
                    issues.append(
                        f"line {line_no}: job record attempt must be an "
                        f"int >= 1, got {attempt!r}"
                    )
    if n_records == 0:
        issues.append("journal is empty")
    return issues


def assert_valid_journal(path, max_shown: int = 20) -> None:
    """Lint a service journal; raise :class:`RunLogError` on issues."""
    issues = lint_journal(path)
    if issues:
        shown = issues[:max_shown]
        text = f"{len(issues)} journal schema issue(s):\n  " + \
            "\n  ".join(shown)
        if len(issues) > len(shown):
            text += f"\n  ... and {len(issues) - len(shown)} more"
        raise RunLogError(text)


def assert_valid_run_log(path, max_shown: int = 20) -> None:
    """Lint and raise :class:`RunLogError` listing the first issues."""
    issues = lint_run_log(path)
    if issues:
        shown = issues[:max_shown]
        text = f"{len(issues)} run-log schema issue(s):\n  " + \
            "\n  ".join(shown)
        if len(issues) > len(shown):
            text += f"\n  ... and {len(issues) - len(shown)} more"
        raise RunLogError(text)


#: Keys every bench-trajectory entry must carry (``manifest`` must also
#: be *present* — None only for entries predating manifest capture).
REQUIRED_BENCH_ENTRY_KEYS = (
    "runner",
    "scale",
    "scenario",
    "python",
    "records",
    "records_per_second",
)


def lint_bench_trajectory(path) -> List[str]:
    """Structurally lint a ``BENCH_speed.json`` throughput trajectory.

    The trajectory is append-only and cross-run: every perf-smoke run
    appends one entry per scenario and gates on the ratio to the
    previous same-(runner, scale, scenario) entry, so a malformed entry
    silently disables the regression gate for every future run on that
    runner class.  The lint checks what that gate depends on:

    1. the file is a JSON array of objects;
    2. every entry carries string ``runner`` / ``scale`` / ``scenario``
       / ``python`` and finite ``records`` / ``records_per_second``
       (records positive — a zero-record timing is a harness bug);
    3. every entry has a ``manifest`` key — a dict carrying the
       :data:`REQUIRED_MANIFEST_KEYS`, or None for entries written
       before manifests were captured (grandfathered, never new);
    4. optional ``ratio_to_previous`` / ``median_records_per_second``
       / ``stdev_records_per_second`` values are finite and
       non-negative (the ratio strictly positive).
    """
    issues: List[str] = []
    try:
        with open(path, encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trajectory: {exc}"]
    if not isinstance(entries, list):
        return ["trajectory is not a JSON array"]
    if not entries:
        issues.append("trajectory is empty")
    for idx, entry in enumerate(entries):
        if not isinstance(entry, dict):
            issues.append(f"entry {idx}: not an object")
            continue
        for key in ("runner", "scale", "scenario", "python"):
            value = entry.get(key)
            if not isinstance(value, str) or not value:
                issues.append(
                    f"entry {idx}: {key} must be a non-empty string, "
                    f"got {value!r}"
                )
        records = entry.get("records")
        if not _is_number(records) or records <= 0:
            issues.append(
                f"entry {idx}: records must be a positive number, "
                f"got {records!r}"
            )
        rps = entry.get("records_per_second")
        if not _is_number(rps) or rps <= 0:
            issues.append(
                f"entry {idx}: records_per_second must be a positive "
                f"number, got {rps!r}"
            )
        if "manifest" not in entry:
            issues.append(f"entry {idx}: missing manifest key")
        else:
            manifest = entry["manifest"]
            if isinstance(manifest, dict):
                for key in REQUIRED_MANIFEST_KEYS:
                    if key not in manifest:
                        issues.append(
                            f"entry {idx}: manifest missing key "
                            f"{key!r}"
                        )
            elif manifest is not None:
                issues.append(
                    f"entry {idx}: manifest must be an object or "
                    f"None, got {type(manifest).__name__}"
                )
        ratio = entry.get("ratio_to_previous")
        if ratio is not None and (not _is_number(ratio) or ratio <= 0):
            issues.append(
                f"entry {idx}: ratio_to_previous must be a finite "
                f"positive number, got {ratio!r}"
            )
        for key in ("median_records_per_second",
                    "stdev_records_per_second"):
            value = entry.get(key)
            if value is not None and (
                not _is_number(value) or value < 0
            ):
                issues.append(
                    f"entry {idx}: {key} must be a finite non-negative "
                    f"number, got {value!r}"
                )
    return issues


def assert_valid_bench_trajectory(path, max_shown: int = 20) -> None:
    """Lint a bench trajectory; raise :class:`RunLogError` on issues."""
    issues = lint_bench_trajectory(path)
    if issues:
        shown = issues[:max_shown]
        text = f"{len(issues)} bench trajectory issue(s):\n  " + \
            "\n  ".join(shown)
        if len(issues) > len(shown):
            text += f"\n  ... and {len(issues) - len(shown)} more"
        raise RunLogError(text)
