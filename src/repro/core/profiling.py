"""Hardware dependence profiling (Section 3.1).

Two structures feed the iterative parallelization workflow:

* a per-CPU **exposed-load table** — a moderate-sized direct-mapped table
  of load PCs indexed by cache tag, updated on every exposed speculative
  load; when the L2 detects a violation it asks the loading CPU for the PC
  stored under the violated line's tag (aliasing can mis-attribute, just
  as in the real hardware);

* an L2-side list of **(load PC, store PC) pairs with total failed
  speculation cycles**; when the list overflows, the entry with the least
  total cycles is reclaimed.  Sorting this list by cycles gives the
  programmer the most harmful dependences to remove first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class ExposedLoadTable:
    """Per-CPU direct-mapped table: cache-tag index -> (tag, load PC)."""

    def __init__(self, entries: int = 1024, line_size: int = 32):
        if entries & (entries - 1):
            raise ValueError("entry count must be a power of two")
        self.entries = entries
        self.line_size = line_size
        self._tags: List[Optional[int]] = [None] * entries
        self._pcs: List[int] = [0] * entries
        # entries is a power of two (asserted above) and line sizes are
        # in practice too, so indexing is a shift+mask instead of a
        # divide+modulo; the divide path remains for odd line sizes.
        self._entry_mask = entries - 1
        if line_size > 0 and not (line_size & (line_size - 1)):
            self._line_shift: Optional[int] = line_size.bit_length() - 1
        else:
            self._line_shift = None
        self.updates = 0
        self.lookups = 0
        self.tag_mismatches = 0

    def _index(self, line_addr: int) -> int:
        if self._line_shift is not None:
            return (line_addr >> self._line_shift) & self._entry_mask
        return (line_addr // self.line_size) % self.entries

    def update(self, line_addr: int, pc: int) -> None:
        """Record the PC of an exposed speculative load of this line."""
        idx = self._index(line_addr)
        self._tags[idx] = line_addr
        self._pcs[idx] = pc
        self.updates += 1

    def lookup(self, line_addr: int) -> Optional[int]:
        """PC of the last exposed load of this line, if still resident."""
        self.lookups += 1
        idx = self._index(line_addr)
        if self._tags[idx] != line_addr:
            self.tag_mismatches += 1
            return None
        return self._pcs[idx]

    def clear(self) -> None:
        self._tags = [None] * self.entries


@dataclass
class ProfiledDependence:
    """One (load PC, store PC) pair with attributed failed cycles."""

    load_pc: Optional[int]
    store_pc: Optional[int]
    failed_cycles: float = 0.0
    violations: int = 0


class DependenceProfiler:
    """L2-side list of violated dependences ranked by failed cycles."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._pairs: Dict[
            Tuple[Optional[int], Optional[int]], ProfiledDependence
        ] = {}
        self.reclaims = 0

    def record(
        self,
        load_pc: Optional[int],
        store_pc: Optional[int],
        failed_cycles: float,
    ) -> None:
        key = (load_pc, store_pc)
        entry = self._pairs.get(key)
        if entry is None:
            if len(self._pairs) >= self.capacity:
                self._reclaim()
            entry = ProfiledDependence(load_pc=load_pc, store_pc=store_pc)
            self._pairs[key] = entry
        entry.failed_cycles += failed_cycles
        entry.violations += 1

    def _reclaim(self) -> None:
        """Evict the entry with the least total failed cycles."""
        victim = min(self._pairs.values(), key=lambda e: e.failed_cycles)
        del self._pairs[(victim.load_pc, victim.store_pc)]
        self.reclaims += 1

    def top(self, n: int = 10) -> List[ProfiledDependence]:
        """The n most harmful dependences, worst first."""
        return sorted(
            self._pairs.values(),
            key=lambda e: e.failed_cycles,
            reverse=True,
        )[:n]

    def pairs(self, n: int = 10) -> List[Tuple]:
        """``top(n)`` as plain (load PC, store PC, failed cycles,
        violations) tuples — JSON-friendly for stats/trace export."""
        return [
            (dep.load_pc, dep.store_pc, dep.failed_cycles, dep.violations)
            for dep in self.top(n)
        ]

    def report(self, pc_names=None, n: int = 10) -> str:
        """Human-readable profile (the paper's software interface)."""
        lines = [
            f"{'failed cycles':>14}  {'violations':>10}  load PC -> store PC"
        ]
        for dep in self.top(n):
            if pc_names is not None:
                load = (
                    pc_names.name(dep.load_pc)
                    if dep.load_pc is not None
                    else "<unknown>"
                )
                store = (
                    pc_names.name(dep.store_pc)
                    if dep.store_pc is not None
                    else "<unknown>"
                )
            else:
                load = hex(dep.load_pc) if dep.load_pc is not None else "?"
                store = hex(dep.store_pc) if dep.store_pc is not None else "?"
            lines.append(
                f"{dep.failed_cycles:>14.0f}  {dep.violations:>10}  "
                f"{load} -> {store}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._pairs)
