"""Sub-thread start tables for selective secondary violations (Figure 4).

When any sub-thread (j, s) begins, epoch *j* broadcasts a *subthreadStart*
message to all logically-later epochs; each later epoch *k* records which
of its own sub-threads was executing at that moment.  When (j, s) is later
rewound, epoch *k* consults its table entry for (j, s): sub-threads of *k*
that completed before (j, s) even began cannot have consumed data from it
and need not restart.

If *k* has no entry for (j, s) — because *k* started executing after
(j, s) began — then *all* of *k* ran concurrently with or after (j, s) and
*k* must restart from its first sub-thread.

Without start tables (``enabled=False``, the Figure 4(a) configuration) a
secondary violation restarts the entire later epoch.

Journaled batch dispatch (``repro.sim.machine``) is safe with respect to
these broadcasts: a subthreadStart message is only sent when a checkpoint
is created, and compiled batches never span a checkpoint boundary (the
dispatch gate splits them there), so a broadcast can never be deferred or
reordered by batching.  On the receiving side, ``record`` snapshots the
receiver's *current* sub-thread index — which mid-batch equals the
interpreted path's, again because batches cannot cross a checkpoint.
"""

from __future__ import annotations

from typing import Dict, Tuple


class SubThreadStartTable:
    """One epoch's record of when earlier epochs' sub-threads began."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: (earlier epoch order, sub-thread index) -> our sub-thread index
        #: that was executing when the message arrived.
        self._entries: Dict[Tuple[int, int], int] = {}

    def record(self, sender_order: int, sender_subidx: int,
               our_subidx: int) -> None:
        """Process a subthreadStart message from (sender, sub-thread)."""
        if not self.enabled:
            return
        self._entries[(sender_order, sender_subidx)] = our_subidx

    def restart_point(self, sender_order: int, sender_subidx: int) -> int:
        """Sub-thread index this epoch must rewind to for a secondary
        violation rooted at (sender, sub-thread).

        Returns 0 (full restart) when tables are disabled or no entry
        exists (we began after the violated sub-thread did).
        """
        if not self.enabled:
            return 0
        return self._entries.get((sender_order, sender_subidx), 0)

    def forget_epoch(self, sender_order: int) -> None:
        """Drop entries for a committed/retired earlier epoch."""
        stale = [k for k in self._entries if k[0] == sender_order]
        for k in stale:
            del self._entries[k]

    def truncate_after_rewind(self, our_subidx: int) -> None:
        """After we rewind to ``our_subidx``, entries pointing into the
        rewound future are clamped: those sub-threads will re-begin, and
        any dependence they develop is re-tracked from scratch.
        """
        for key, val in self._entries.items():
            if val > our_subidx:
                self._entries[key] = our_subidx

    def __len__(self) -> int:
        return len(self._entries)
