"""The TLS engine: epochs, contexts, sub-threads, violations, commit.

This is the paper's protocol logic, layered over the speculative L2.  The
engine owns:

* the **logical order** of epochs (a global sequence number) and the
  homefree-token commit order;
* the **hardware thread contexts** — ``max_subthreads`` per CPU, one per
  sub-thread (Section 2.2: "a speculative thread context per sub-thread");
  the engine is the :class:`~repro.memory.l2.ContextDirectory` the L2
  consults to interpret context ids;
* the **sub-thread start policy** (a new sub-thread every
  ``subthread_spacing`` speculative instructions, while contexts remain);
* the **sub-thread start tables** and primary/secondary **violation
  resolution**;
* the **dependence profiler** and per-CPU exposed-load tables.

Timing is deliberately *not* here: the machine (``repro.sim.machine``)
calls into the engine for protocol decisions and converts the returned
actions into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..memory.l2 import AccessResult, SpeculativeL2, Violation
from ..trace.events import EpochTrace
from .accounting import CycleCounters
from .epoch import EpochExecution, EpochStatus
from .prediction import ViolatingLoadPredictor
from .profiling import DependenceProfiler, ExposedLoadTable
from .starttable import SubThreadStartTable


@dataclass(frozen=True)
class TLSConfig:
    """Protocol parameters swept by the paper's evaluation."""

    #: Sub-thread contexts available per speculative thread (2/4/8 in
    #: Figure 6).  1 disables sub-threads: all-or-nothing TLS.
    max_subthreads: int = 8
    #: Start a new sub-thread every n speculative instructions (Figure 6
    #: sweeps this; the paper's baseline is 5,000 at paper scale).
    subthread_spacing: int = 250
    #: Simulation fidelity knob: speculative COMPUTE batches are consumed
    #: in slices of at most this many instructions so a violation arriving
    #: mid-batch mis-attributes at most one slice of cycles to Failed.
    spec_slice_limit: int = 250
    #: Section 5.1's closing observation, implemented: "a better strategy
    #: may be to customize the sub-thread size such that the average
    #: thread size for an application would be divided evenly into
    #: sub-threads."  When True, each epoch's spacing is its own size
    #: divided by the context count (an oracle of thread size, standing
    #: in for the hardware's thread-size predictor), floored at
    #: ``adaptive_spacing_min``.
    adaptive_spacing: bool = False
    adaptive_spacing_min: int = 50
    #: Cycles to create a sub-thread checkpoint (paper models 0; the
    #: register back-up could instead cost tens of cycles — ablation A2).
    subthread_start_cost: int = 0
    #: Fixed violation delivery/recovery penalty in cycles (inter-core
    #: message + pipeline restart), on top of the L1 refetch misses.
    violation_penalty: int = 20
    #: Cycles between consecutive epoch spawns (the fork chain): the k-th
    #: epoch of a region begins k*spawn_latency after the region starts.
    #: This is what keeps tiny-epoch transactions (PAYMENT, ORDER STATUS)
    #: from profiting: their epochs are not much longer than the spawn.
    spawn_latency: int = 60
    #: Selective secondary violations via sub-thread start tables
    #: (Figure 4(b)); False = restart all later epochs entirely (4(a)).
    start_tables: bool = True
    #: Line-granularity speculative-load tracking (paper default).
    line_granularity_loads: bool = True
    #: Section 5.1 extension: open a sub-thread checkpoint immediately
    #: before loads the violating-load predictor flags, instead of (or in
    #: addition to) the periodic spacing policy.
    predictor_subthreads: bool = False
    #: Minimum speculative instructions between predictor-triggered
    #: checkpoints (avoids burning every context on one hot PC cluster).
    predictor_min_gap: int = 25
    #: Moshovos-style alternative the paper evaluated and rejected:
    #: predicted-violating loads synchronize (stall until an earlier
    #: epoch stores the line or the epoch becomes the oldest).
    sync_predicted_loads: bool = False
    #: Value-prediction alternative (Section 2.2): predicted-violating
    #: loads consume a predicted value and proceed independently of the
    #: store.  Modeled optimistically: a correct prediction (probability
    #: ``value_prediction_accuracy``, drawn deterministically per dynamic
    #: load) removes the dependence entirely; a wrong one behaves like an
    #: unpredicted load (an upper bound on what value prediction buys).
    value_predict_loads: bool = False
    value_prediction_accuracy: float = 0.7


@dataclass
class RewindAction:
    """One epoch rewind, to be applied to CPU replay state by the machine."""

    epoch: EpochExecution
    subthread_idx: int
    failed_cycles: CycleCounters
    latches_released: List[int] = field(default_factory=list)
    secondary: bool = False
    #: The squash was caused by speculative-state overflow (tiny L2 /
    #: no victim space), not by a dependence violation.  The machine
    #: uses this to stall repeat offenders until the commit horizon
    #: advances instead of letting them thrash the memory system.
    overflow: bool = False


class TLSEngine:
    """Protocol state machine shared by all CPUs."""

    def __init__(
        self,
        l2: SpeculativeL2,
        n_cpus: int,
        config: Optional[TLSConfig] = None,
    ):
        self.config = config or TLSConfig()
        self.l2 = l2
        self.n_cpus = n_cpus
        self._next_order = 0
        #: order -> live epoch, for all uncommitted epochs.
        self.active: Dict[int, EpochExecution] = {}
        #: Commit horizon: every epoch with order < horizon has committed.
        self.commit_horizon = 0
        # Context directory state: ctx -> (order, subidx).
        self._ctx_order: Dict[int, int] = {}
        self._ctx_subidx: Dict[int, int] = {}
        self._ctx_free: Dict[int, List[int]] = {
            cpu: list(
                range(
                    cpu * self.config.max_subthreads,
                    (cpu + 1) * self.config.max_subthreads,
                )
            )
            for cpu in range(n_cpus)
        }
        self.start_tables: Dict[int, SubThreadStartTable] = {}
        self.exposed_load_tables = [
            ExposedLoadTable(line_size=l2.geom.line_size)
            for _ in range(n_cpus)
        ]
        self.profiler = DependenceProfiler()
        self.load_predictor = ViolatingLoadPredictor()
        #: Machine hook, called with the victim epoch as the *first*
        #: action of a rewind — before ``epoch.rewind_to`` captures
        #: Failed cycles — so an in-flight journaled batch can be
        #: restored first (see the machine's _restore_batch_journal).
        self.pre_rewind = None
        # Statistics.
        self.primary_violations = 0
        self.secondary_violations = 0
        self.secondary_rewinds_avoided = 0
        self.subthreads_started = 0
        self.epochs_committed = 0
        self.value_predictions_used = 0

    # ------------------------------------------------------------------
    # ContextDirectory interface (consulted by the L2)
    # ------------------------------------------------------------------

    def order_of(self, ctx: int) -> int:
        return self._ctx_order[ctx]

    def subidx_of(self, ctx: int) -> int:
        return self._ctx_subidx[ctx]

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def allocate_order(self) -> int:
        order = self._next_order
        self._next_order += 1
        return order

    def start_epoch(
        self,
        trace: EpochTrace,
        cpu: int,
        now: float,
        speculative: bool = True,
    ) -> EpochExecution:
        """Begin executing an epoch on ``cpu`` at cycle ``now``.

        The first epoch of a region (nothing older uncommitted) starts
        homefree (non-speculative): it can never be violated.
        """
        order = self.allocate_order()
        if order == self.commit_horizon:
            speculative = False
        epoch = EpochExecution(
            trace=trace, order=order, cpu=cpu, speculative=speculative
        )
        epoch.status = EpochStatus.RUNNING
        self.active[order] = epoch
        self.start_tables[order] = SubThreadStartTable(
            enabled=self.config.start_tables
        )
        # Reclaim the CPU's context pool from the previous occupant.
        self._ctx_free[cpu] = list(
            range(
                cpu * self.config.max_subthreads,
                (cpu + 1) * self.config.max_subthreads,
            )
        )
        if speculative or True:
            # Even a homefree epoch gets sub-thread 0 for bookkeeping
            # (cycle accounting, store masks); its accesses simply don't
            # set speculative bits.
            self._open_subthread(epoch, now)
        return epoch

    def _open_subthread(self, epoch: EpochExecution, now: float) -> None:
        ctx = self._ctx_free[epoch.cpu].pop(0)
        idx = len(epoch.subthreads)
        self._ctx_order[ctx] = epoch.order
        self._ctx_subidx[ctx] = idx
        epoch.start_subthread(ctx, now)
        self.subthreads_started += 1
        # Broadcast subthreadStart to all logically-later active epochs.
        for order, other in self.active.items():
            if order > epoch.order and other.subthreads:
                self.start_tables[order].record(
                    epoch.order, idx, other.current_subthread.index
                )

    def spacing_for(self, epoch: EpochExecution) -> int:
        """Sub-thread spacing for this epoch under the current policy."""
        if not self.config.adaptive_spacing:
            return self.config.subthread_spacing
        return max(
            self.config.adaptive_spacing_min,
            epoch.trace.instruction_count // self.config.max_subthreads,
        )

    def maybe_start_subthread(self, epoch: EpochExecution, now: float) -> bool:
        """Open a new sub-thread if the spacing policy says so.

        Called between records.  Returns True when a checkpoint was
        created (the machine charges ``subthread_start_cost`` cycles).
        """
        if not epoch.speculative:
            return False
        if len(epoch.subthreads) >= self.config.max_subthreads:
            return False
        if epoch.instrs_since_checkpoint < self.spacing_for(epoch):
            return False
        if not self._ctx_free[epoch.cpu]:
            return False
        self._open_subthread(epoch, now)
        return True

    def maybe_start_predictor_subthread(
        self, epoch: EpochExecution, load_pc: int, now: float
    ) -> bool:
        """Open a sub-thread right before a predicted-violating load.

        The Section 5.1 placement policy: if a violation then arrives for
        this load, the rewind loses (almost) nothing.  Gated on the
        predictor, a free context, and a minimum gap since the last
        checkpoint (a zero-length sub-thread would waste a context).
        """
        if not self.config.predictor_subthreads:
            return False
        if not epoch.speculative:
            return False
        if len(epoch.subthreads) >= self.config.max_subthreads:
            return False
        if epoch.instrs_since_checkpoint < self.config.predictor_min_gap:
            return False
        if not self._ctx_free[epoch.cpu]:
            return False
        if not self.load_predictor.predicts_violation(load_pc):
            return False
        self._open_subthread(epoch, now)
        return True

    def should_synchronize_load(
        self, epoch: EpochExecution, load_pc: int
    ) -> bool:
        """Moshovos-style policy: stall this load instead of speculating.

        True when the load PC is predicted to violate and there exists a
        logically-earlier uncommitted epoch that could still store the
        value.  The machine implements the actual stall.
        """
        if not self.config.sync_predicted_loads:
            return False
        if not epoch.speculative:
            return False
        if epoch.order == self.commit_horizon:
            return False  # oldest epoch: nothing to wait for
        return self.load_predictor.predicts_violation(load_pc)

    def finish_epoch(self, epoch: EpochExecution, now: float) -> None:
        epoch.status = EpochStatus.FINISHED
        epoch.finish_cycle = now

    def try_commit(self) -> List[EpochExecution]:
        """Commit finished epochs at the head of the logical order.

        Returns the epochs committed (machine folds their pending cycles
        into the good categories and frees their CPUs).  After committing,
        the new oldest epoch receives the homefree token.
        """
        committed: List[EpochExecution] = []
        while True:
            epoch = self.active.get(self.commit_horizon)
            if epoch is None or epoch.status != EpochStatus.FINISHED:
                break
            self._commit_state(epoch)
            epoch.status = EpochStatus.COMMITTED
            del self.active[epoch.order]
            del self.start_tables[epoch.order]
            for table in self.start_tables.values():
                table.forget_epoch(epoch.order)
            self.commit_horizon += 1
            self.epochs_committed += 1
            committed.append(epoch)
        # Pass the homefree token to the new oldest epoch, committing its
        # speculative state so far (it can no longer be violated).
        head = self.active.get(self.commit_horizon)
        if head is not None and head.speculative:
            self._commit_state(head)
            head.speculative = False
            head.homefree = True
        return committed

    def _commit_state(self, epoch: EpochExecution) -> None:
        self.l2.commit_epoch(epoch.order, epoch.all_ctxs())

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def load(
        self, epoch: EpochExecution, addr: int, size: int, pc: int
    ) -> Tuple[AccessResult, bool]:
        """Perform the protocol side of a load.

        Returns (L2 access result, first_notification) where
        ``first_notification`` tells the machine this is the epoch's first
        speculative access to the line, so the L1 must mark it notified.
        """
        line = self.l2.geom.line_addr(addr)
        mask = self.l2.word_mask(addr, size)
        exposed = epoch.speculative and not epoch.covers_load(line, mask)
        if exposed and self._value_prediction_hits(epoch, addr, pc):
            # The load consumed a (correct) predicted value: it no longer
            # depends on any earlier store, so no speculative-load bit is
            # set and no violation can target it.
            exposed = False
            self.value_predictions_used += 1
        ctx = epoch.current_ctx if epoch.speculative else None
        result = self.l2.load(addr, size, epoch.order, ctx, exposed)
        if exposed:
            self.exposed_load_tables[epoch.cpu].update(line, pc)
        return result, exposed

    def load_compiled(
        self,
        epoch: EpochExecution,
        line: int,
        sub_addr: int,
        pc: int,
        mask: int,
        load_bits: int,
    ) -> Tuple[bool, Optional[AccessResult], bool]:
        """Single-line twin of :meth:`load` for compiled traces.

        The trace compiler already resolved the access into its line,
        word mask and speculative-load bit mask, so this path goes
        straight to the L2's single-line fast path.  Returns ``(hit,
        result, exposed)`` with ``result`` None on a clean hit.
        """
        exposed = epoch.speculative and not epoch.covers_load(line, mask)
        if exposed and self._value_prediction_hits(epoch, sub_addr, pc):
            exposed = False
            self.value_predictions_used += 1
        # epoch.current_ctx, inlined (every epoch has sub-thread 0).
        ctx = epoch.subthreads[-1].ctx if epoch.speculative else None
        hit, result = self.l2.load_line(
            line, epoch.order, ctx, exposed, load_bits
        )
        if exposed:
            self.exposed_load_tables[epoch.cpu].update(line, pc)
        return hit, result, exposed

    def store_compiled(
        self,
        epoch: EpochExecution,
        line: int,
        words: int,
        pc: int,
        private: bool,
    ) -> Tuple[Optional[AccessResult], List[RewindAction]]:
        """Single-line twin of :meth:`store` for compiled traces.

        ``private`` marks a region-private line (only this epoch ever
        touches it), for which the L2 skips the violation scan.  Returns
        ``(result, rewinds)`` with ``result`` None for a clean conflict-
        free hit on an existing version.
        """
        if epoch.speculative:
            # epoch.note_store + epoch.current_ctx, inlined (hot path).
            cp = epoch.subthreads[-1]
            sm = cp.store_mask
            sm[line] = sm.get(line, 0) | words
            su = epoch.store_union
            su[line] = su.get(line, 0) | words
            ctx = cp.ctx
        else:
            ctx = None
        _, result = self.l2.store_line(
            line, epoch.order, ctx, words, store_pc=pc, detect=not private
        )
        if result is None:
            return None, ()
        violations = result.violations
        overflow = result.overflow_squash
        if not violations and not overflow:
            return result, ()
        rewinds = self._resolve_violations(violations)
        if overflow:
            rewinds.extend(self._resolve_overflow(overflow))
        return result, rewinds

    def _value_prediction_hits(
        self, epoch: EpochExecution, addr: int, pc: int
    ) -> bool:
        """Deterministic per-dynamic-load draw at the configured accuracy."""
        if not self.config.value_predict_loads:
            return False
        if not self.load_predictor.predicts_violation(pc):
            return False
        draw = (
            epoch.order * 2654435761 ^ pc * 40503 ^ addr * 2246822519
        ) % 10_000
        return draw < int(self.config.value_prediction_accuracy * 10_000)

    def store(
        self, epoch: EpochExecution, addr: int, size: int, pc: int
    ) -> Tuple[AccessResult, List[RewindAction]]:
        """Perform the protocol side of a store.

        The store updates (or creates) the epoch's version in the L2 and
        may violate logically-later epochs; the returned rewind actions
        have already been applied to protocol state and must be applied to
        CPU replay state by the machine.
        """
        line = self.l2.geom.line_addr(addr)
        mask = self.l2.word_mask(addr, size)
        if epoch.speculative:
            epoch.note_store(line, mask)
        ctx = epoch.current_ctx if epoch.speculative else None
        result = self.l2.store(addr, size, epoch.order, ctx, store_pc=pc)
        rewinds = self._resolve_violations(result.violations)
        rewinds.extend(self._resolve_overflow(result.overflow_squash))
        return result, rewinds

    # ------------------------------------------------------------------
    # Violation resolution (Section 2.2, Figure 4)
    # ------------------------------------------------------------------

    def _resolve_violations(
        self, violations: List[Violation]
    ) -> List[RewindAction]:
        actions: List[RewindAction] = []
        #: Earliest rewind already applied to each epoch in this batch.
        applied: Dict[int, int] = {}
        for violation in sorted(violations, key=lambda v: v.victim_order):
            victim = self.active.get(violation.victim_order)
            if victim is None or not victim.speculative:
                continue
            target = violation.subthread_idx
            if violation.victim_order in applied and (
                target >= applied[violation.victim_order]
            ):
                continue  # already rewound at or before this point
            if target >= len(victim.subthreads):
                continue  # stale: that sub-thread was already squashed
            load_pc = self.exposed_load_tables[victim.cpu].lookup(
                violation.tag
            )
            action = self._rewind(victim, target, secondary=False)
            applied[victim.order] = target
            self.primary_violations += 1
            self.profiler.record(
                load_pc, violation.store_pc, action.failed_cycles.total()
            )
            self.load_predictor.train(load_pc)
            actions.append(action)
            # Secondary violations: every logically-later epoch consults
            # its start table for (victim, target).
            for order in sorted(self.active):
                if order <= victim.order:
                    continue
                later = self.active[order]
                if not later.speculative or not later.subthreads:
                    continue
                point = self.start_tables[order].restart_point(
                    victim.order, target
                )
                if order in applied and point >= applied[order]:
                    self.secondary_rewinds_avoided += 1
                    continue
                if point >= len(later.subthreads):
                    point = len(later.subthreads) - 1
                sec = self._rewind(later, point, secondary=True)
                applied[order] = point
                self.secondary_violations += 1
                actions.append(sec)
        return actions

    def _resolve_overflow(self, orders: List[int]) -> List[RewindAction]:
        """Full squash of epochs whose speculative state overflowed."""
        actions: List[RewindAction] = []
        for order in orders:
            epoch = self.active.get(order)
            if epoch is None or not epoch.speculative:
                continue
            if not epoch.subthreads:
                continue
            action = self._rewind(epoch, 0, secondary=True)
            action.overflow = True
            actions.append(action)
        return actions

    def force_rewind(
        self, epoch: EpochExecution, subthread_idx: int = 0
    ) -> RewindAction:
        """Externally-requested rewind (machine deadlock breaker, tests)."""
        return self._rewind(epoch, subthread_idx, secondary=True)

    def _rewind(
        self, epoch: EpochExecution, subthread_idx: int, secondary: bool
    ) -> RewindAction:
        """Apply a rewind to protocol state; timing is left to the machine."""
        if self.pre_rewind is not None:
            self.pre_rewind(epoch)
        squashed_ctxs, latches, failed = epoch.rewind_to(subthread_idx, 0.0)
        self.l2.squash_ctxs(epoch.order, squashed_ctxs)
        # Free contexts above the rewind point for reuse; the target
        # sub-thread keeps its context and re-executes.
        keep = epoch.all_ctxs()
        pool = self._ctx_free[epoch.cpu]
        for ctx in squashed_ctxs:
            if ctx not in keep and ctx not in pool:
                pool.append(ctx)
        pool.sort()
        self.start_tables[epoch.order].truncate_after_rewind(subthread_idx)
        # The victim CPU's exposed-load table is conservatively cleared:
        # its PCs describe rewound execution.
        self.exposed_load_tables[epoch.cpu].clear()
        return RewindAction(
            epoch=epoch,
            subthread_idx=subthread_idx,
            failed_cycles=failed,
            latches_released=latches,
            secondary=secondary,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def oldest_active(self) -> Optional[EpochExecution]:
        return self.active.get(self.commit_horizon)

    def check_invariants(self, deep: bool = True) -> None:
        """Protocol-state invariants; raises AssertionError on violation.

        ``deep=False`` skips the L2 structural sweep (which is
        proportional to cache size) so the cycle-level checker can run
        the protocol checks at a higher frequency than the memory-system
        sweep.
        """
        if deep:
            self.l2.check_invariants()
        assert set(self.start_tables) == set(self.active), (
            "start tables out of sync with active epochs"
        )
        n_ctx = self.config.max_subthreads
        for order, epoch in self.active.items():
            assert epoch.order == order
            assert self.commit_horizon <= order < self._next_order, (
                f"active epoch order {order} outside "
                f"[{self.commit_horizon}, {self._next_order})"
            )
            ctxs = epoch.all_ctxs()
            assert len(set(ctxs)) == len(ctxs), "duplicate contexts"
            lo = epoch.cpu * n_ctx
            free = self._ctx_free[epoch.cpu]
            for i, ctx in enumerate(ctxs):
                assert lo <= ctx < lo + n_ctx, (
                    f"ctx {ctx} outside cpu {epoch.cpu}'s context range"
                )
                assert ctx not in free, f"live ctx {ctx} also in free pool"
                assert self._ctx_order[ctx] == order
                assert self._ctx_subidx[ctx] == i
        for cpu, pool in self._ctx_free.items():
            assert len(set(pool)) == len(pool), (
                f"duplicate ctx in cpu {cpu}'s free pool"
            )
            lo = cpu * n_ctx
            for ctx in pool:
                assert lo <= ctx < lo + n_ctx, (
                    f"ctx {ctx} in wrong cpu's free pool ({cpu})"
                )
        self._check_start_tables()

    def _check_start_tables(self) -> None:
        """Sub-thread start-table monotonicity (Figure 4(b)).

        For a fixed sender epoch, later sender sub-threads must map to
        our sub-thread indices that are >= those of earlier sender
        sub-threads: sender sub-threads begin in time order, and every
        receiver rewind clamps recorded indices (truncate_after_rewind),
        which preserves the ordering.  Entries for sender sub-threads
        that no longer exist (the sender rewound past them) are stale and
        never queried, so they are exempt.  All recorded indices must
        point at a live receiver sub-thread.
        """
        for order, table in self.start_tables.items():
            receiver = self.active[order]
            n_sub = len(receiver.subthreads)
            per_sender: Dict[int, List[Tuple[int, int]]] = {}
            for (s_order, s_idx), our_idx in table._entries.items():
                assert 0 <= our_idx < max(n_sub, 1), (
                    f"epoch {order}'s start table points at sub-thread "
                    f"{our_idx} but only {n_sub} exist"
                )
                sender = self.active.get(s_order)
                if sender is None or s_idx >= len(sender.subthreads):
                    continue  # stale entry; never queried
                per_sender.setdefault(s_order, []).append((s_idx, our_idx))
            for s_order, pairs in per_sender.items():
                pairs.sort()
                prev = -1
                for s_idx, our_idx in pairs:
                    assert our_idx >= prev, (
                        f"epoch {order}'s start table not monotone for "
                        f"sender {s_order}: sub-thread {s_idx} -> "
                        f"{our_idx} after -> {prev}"
                    )
                    prev = our_idx
