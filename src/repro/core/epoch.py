"""Epoch (speculative thread) execution state, including sub-threads.

An :class:`EpochExecution` is the live state of one speculative thread on
one CPU: a cursor into its trace, the stack of sub-thread checkpoints, the
per-sub-thread store masks used for exposed-load detection, the latches it
holds, and per-sub-thread pending cycle counters that are classified as
good or Failed when the epoch commits or is rewound.

Sub-threads (Section 2.2)
-------------------------
A sub-thread begins with a lightweight checkpoint: here, the trace cursor
and the clock, standing in for the paper's shadow register file (which the
paper models at zero cycles; the cost is configurable).  Sub-threads of an
epoch run serially and in order, so there are never violations *between*
them; the checkpoint list is strictly append-only until a rewind truncates
it.  Each sub-thread owns one hardware thread context (its identity in the
L2's speculative-state bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..trace.events import EpochTrace
from .accounting import CycleCounters


class EpochStatus:
    PENDING = "pending"      # not yet started
    RUNNING = "running"
    FINISHED = "finished"    # done executing, awaiting commit token
    COMMITTED = "committed"


@dataclass(slots=True)
class SubThreadCheckpoint:
    """State captured at a sub-thread boundary (the rewind target)."""

    index: int                  # sub-thread index within the epoch
    ctx: int                    # hardware thread context id
    cursor: int                 # trace record index at the checkpoint
    offset: int                 # progress within a partially-consumed
                                # COMPUTE batch record at the checkpoint
    start_cycle: float          # when this sub-thread (last) began
    #: Word masks of this sub-thread's own stores, line -> mask.  Exposure
    #: of a load is tested against the union over sub-threads 0..current.
    store_mask: Dict[int, int] = field(default_factory=dict)
    #: Latches acquired during this sub-thread (released on rewind).
    latches: List[int] = field(default_factory=list)
    #: Cycles accrued while executing this sub-thread, pending
    #: classification at commit (good) or rewind (Failed).
    pending: CycleCounters = field(default_factory=CycleCounters)
    #: Dynamic instructions retired in this sub-thread so far.
    instructions: int = 0


class EpochExecution:
    """Live state of one epoch on one CPU."""

    __slots__ = (
        "trace",
        "order",
        "cpu",
        "speculative",
        "status",
        "cursor",
        "offset",
        "subthreads",
        "instrs_since_checkpoint",
        "violations_suffered",
        "restarts",
        "homefree",
        "finish_cycle",
        "last_rewound_start",
        "failed_intervals",
        "compiled",
        "records",
        "n_records",
        "store_union",
    )

    def __init__(
        self,
        trace: EpochTrace,
        order: int,
        cpu: int,
        speculative: bool = True,
    ):
        self.trace = trace
        #: ``trace.records`` / its length, cached for the hot dispatch
        #: loop (two attribute hops and a len() per event add up).
        self.records = trace.records
        self.n_records = len(trace.records)
        self.order = order
        self.cpu = cpu
        #: False when TLS is off for this epoch (NO SPECULATION mode) or
        #: once the epoch holds the homefree token.
        self.speculative = speculative
        self.status = EpochStatus.PENDING
        self.cursor = 0
        #: Instructions already consumed from a COMPUTE batch record at
        #: ``cursor`` (large batches are split so sub-thread boundaries
        #: land at the configured spacing).
        self.offset = 0
        self.subthreads: List[SubThreadCheckpoint] = []
        #: Instructions retired since the last sub-thread boundary
        #: (drives the every-n-instructions sub-thread start policy).
        self.instrs_since_checkpoint = 0
        self.violations_suffered = 0
        self.restarts = 0
        self.homefree = not speculative
        self.finish_cycle: Optional[float] = None
        #: Wall time at which the most recently rewound sub-thread had
        #: started (read by the machine for exact Failed attribution).
        self.last_rewound_start = 0.0
        #: Disjoint, sorted wall intervals already charged as Failed for
        #: this epoch (see :meth:`charge_failed_interval`).
        self.failed_intervals: List[Tuple[float, float]] = []
        #: Compiled entry list parallel to ``trace.records`` (see
        #: :mod:`repro.trace.compile`); None when trace compilation is
        #: disabled.  Replay metadata only — never protocol state.
        self.compiled: Optional[list] = None
        #: Union of every live sub-thread's store mask, per line — makes
        #: :meth:`covers_load` a single dict probe.  Rebuilt from the
        #: surviving sub-threads on rewind.
        self.store_union: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Sub-thread management
    # ------------------------------------------------------------------

    @property
    def current_subthread(self) -> SubThreadCheckpoint:
        return self.subthreads[-1]

    @property
    def current_ctx(self) -> Optional[int]:
        if not self.speculative or not self.subthreads:
            return None
        return self.subthreads[-1].ctx

    def start_subthread(self, ctx: int, now: float) -> SubThreadCheckpoint:
        """Open a new sub-thread with a checkpoint at the current cursor."""
        cp = SubThreadCheckpoint(
            index=len(self.subthreads),
            ctx=ctx,
            cursor=self.cursor,
            offset=self.offset,
            start_cycle=now,
        )
        self.subthreads.append(cp)
        self.instrs_since_checkpoint = 0
        return cp

    def rewind_to(self, subthread_idx: int, now: float) -> Tuple[
        List[int], List[int], CycleCounters
    ]:
        """Rewind to the *start* of sub-thread ``subthread_idx``.

        Discards sub-threads after it and resets it to its checkpoint.
        Returns ``(squashed_ctxs, latches_to_release, failed_cycles)``:
        the hardware contexts whose L2 state must be squashed (the rewound
        sub-thread's own context plus all later ones), latches acquired by
        rewound code, and the pending cycles now classified as Failed.

        Callers that run compiled traces must unwind any in-flight
        journaled batch *before* calling this (the engine's
        ``pre_rewind`` hook): the journal restore corrects ``cursor``
        and the pending counters that the Failed accounting below
        consumes, so ordering it after the rewind would charge cycles
        the interpreted path never accrued.
        """
        if subthread_idx >= len(self.subthreads):
            raise ValueError(
                f"rewind to sub-thread {subthread_idx} but only "
                f"{len(self.subthreads)} exist"
            )
        rewound = self.subthreads[subthread_idx:]
        target = self.subthreads[subthread_idx]
        self.last_rewound_start = target.start_cycle

        squashed_ctxs = [cp.ctx for cp in rewound]
        latches: List[int] = []
        failed = CycleCounters()
        for cp in rewound:
            latches.extend(cp.latches)
            failed.merge(cp.pending)

        # Truncate and reset the target checkpoint for re-execution.
        del self.subthreads[subthread_idx + 1:]
        self.cursor = target.cursor
        self.offset = target.offset
        target.start_cycle = now
        target.store_mask.clear()
        # Rebuild the epoch-wide store-mask union from the survivors.
        su: Dict[int, int] = {}
        for cp in self.subthreads:
            for line, m in cp.store_mask.items():
                su[line] = su.get(line, 0) | m
        self.store_union = su
        target.latches.clear()
        target.pending = CycleCounters()
        target.instructions = 0
        self.instrs_since_checkpoint = 0
        self.violations_suffered += 1
        if subthread_idx == 0:
            self.restarts += 1
        if self.status == EpochStatus.FINISHED:
            self.status = EpochStatus.RUNNING
            self.finish_cycle = None
        return squashed_ctxs, latches, failed

    def all_ctxs(self) -> List[int]:
        return [cp.ctx for cp in self.subthreads]

    # ------------------------------------------------------------------
    # Store masks / exposed-load test
    # ------------------------------------------------------------------

    def note_store(self, line: int, mask: int) -> None:
        sm = self.current_subthread.store_mask
        sm[line] = sm.get(line, 0) | mask
        su = self.store_union
        su[line] = su.get(line, 0) | mask

    def covers_load(self, line: int, mask: int) -> bool:
        """True if the epoch's own earlier stores cover every loaded word.

        Such a load is *not exposed*: the value was produced within the
        epoch, so no cross-epoch dependence tracking is needed for it.
        """
        written = self.store_union.get(line)
        return written is not None and not (mask & ~written)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------

    def retire(self, instructions: int) -> None:
        self.instrs_since_checkpoint += instructions
        if self.subthreads:
            self.current_subthread.instructions += instructions

    def accrue(self, category: str, cycles: float) -> None:
        if self.subthreads:
            self.current_subthread.pending.add(category, cycles)

    @property
    def done(self) -> bool:
        return self.cursor >= self.n_records

    def charge_failed_interval(self, lo: float, hi: float) -> float:
        """Record [lo, hi] as Failed wall time; returns the newly-charged
        length (the part not already covered by earlier charges).

        Used by the machine for exact Failed attribution: a rewind wastes
        the wall interval from the rewound sub-thread's start to the
        restart instant, but repeated rewinds of one epoch can overlap
        (e.g. a deeper rewind after a shallow one), so already-charged
        sub-intervals must not be charged twice.
        """
        if hi <= lo:
            return 0.0
        charge = hi - lo
        merged: List[Tuple[float, float]] = []
        new_lo, new_hi = lo, hi
        for a, b in self.failed_intervals:
            if b < new_lo or a > new_hi:
                merged.append((a, b))
                continue
            # Overlap with the new interval: subtract and absorb.
            charge -= max(0.0, min(b, new_hi) - max(a, new_lo))
            new_lo = min(new_lo, a)
            new_hi = max(new_hi, b)
        merged.append((new_lo, new_hi))
        merged.sort()
        self.failed_intervals = merged
        return max(0.0, charge)

    def pending_cycles(self) -> CycleCounters:
        return CycleCounters.sum_of(cp.pending for cp in self.subthreads)

    def drain_pending(self) -> CycleCounters:
        """Collect and clear all pending counters (at commit)."""
        total = self.pending_cycles()
        for cp in self.subthreads:
            cp.pending = CycleCounters()
        return total
