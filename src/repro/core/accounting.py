"""Cycle-category accounting used for the Figure 5 execution breakdowns.

The paper's bar graphs split each CPU's cycles into: **Idle** (no thread
available), **Failed** (executed code later undone by a violation),
**Synchronization** (stalled on a latch during escaped speculation),
**Cache miss** (stalled on the memory hierarchy), and **Busy** (retiring
instructions).  We additionally separate the **TLS software overhead**
instructions so the TLS-SEQ bar's 0.93-1.05x factor is visible.

Cycles are accrued per sub-thread while an epoch runs and are only
*classified* at the end: sub-threads that commit fold their pending cycles
into the good categories; sub-threads that are rewound fold everything
into Failed.  This matches the paper's definition of Failed as "all time
spent executing failed code".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable


class Category:
    """Cycle breakdown categories (Figure 5 legend)."""

    BUSY = "busy"
    MISS = "cache_miss"
    SYNC = "sync"
    OVERHEAD = "tls_overhead"
    IDLE = "idle"
    FAILED = "failed"

    GOOD = (BUSY, MISS, SYNC, OVERHEAD)
    ALL = (BUSY, MISS, SYNC, OVERHEAD, IDLE, FAILED)


@dataclass(slots=True)
class CycleCounters:
    """A mutable bag of per-category cycle counts."""

    cycles: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in Category.ALL}
    )

    def add(self, category: str, amount: float) -> None:
        if amount:
            self.cycles[category] += amount

    def merge(self, other: "CycleCounters") -> None:
        for cat, val in other.cycles.items():
            if val:
                self.cycles[cat] += val

    def merge_as_failed(self, other: "CycleCounters") -> None:
        """Fold every cycle of ``other`` into the Failed category."""
        self.cycles[Category.FAILED] += other.total()

    def total(self) -> float:
        return sum(self.cycles.values())

    def get(self, category: str) -> float:
        return self.cycles[category]

    def clear(self) -> None:
        for cat in self.cycles:
            self.cycles[cat] = 0.0

    def copy(self) -> "CycleCounters":
        out = CycleCounters()
        out.cycles = dict(self.cycles)
        return out

    @staticmethod
    def sum_of(counters: Iterable["CycleCounters"]) -> "CycleCounters":
        out = CycleCounters()
        for c in counters:
            out.merge(c)
        return out
