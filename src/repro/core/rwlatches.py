"""Reader-writer latch table.

The minidb B-tree models its read paths as latch-free (shared latches
that never conflict in read-mostly descents) and its write paths with
exclusive leaf latches — that is what the TPC-C traces contain.  For
custom workloads that want explicit shared/exclusive semantics, this
table provides classic reader-writer latches with writer preference:

* any number of readers may hold the latch together;
* a writer waits for all readers to drain and blocks new readers
  (no writer starvation);
* grants are FIFO within a class.

It mirrors :class:`~repro.core.latches.LatchTable`'s interface shape so
a machine integration can swap tables; the current Machine uses the
exclusive-only table because that is the paper's trace discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

READ = "R"
WRITE = "W"


@dataclass
class RWLatchState:
    readers: Set[object] = field(default_factory=set)
    writer: Optional[object] = None
    writer_recursion: int = 0
    #: FIFO of (owner, mode) waiting for the latch.
    waiters: List[Tuple[object, str]] = field(default_factory=list)


class RWLatchTable:
    """Shared/exclusive latches with writer preference."""

    def __init__(self):
        self._latches: Dict[int, RWLatchState] = {}
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def _state(self, latch_id: int) -> RWLatchState:
        state = self._latches.get(latch_id)
        if state is None:
            state = RWLatchState()
            self._latches[latch_id] = state
        return state

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def try_acquire(self, latch_id: int, owner: object,
                    mode: str = WRITE) -> bool:
        """Acquire if compatible; else enqueue and return False."""
        if mode not in (READ, WRITE):
            raise ValueError(f"bad latch mode {mode!r}")
        state = self._state(latch_id)
        if mode == READ:
            if owner in state.readers or state.writer is owner:
                self.acquisitions += 1
                return True  # re-entrant (write latch implies read)
            writer_waiting = any(m == WRITE for _, m in state.waiters)
            if state.writer is None and not writer_waiting:
                state.readers.add(owner)
                self.acquisitions += 1
                return True
        else:
            if state.writer is owner:
                state.writer_recursion += 1
                self.acquisitions += 1
                return True
            if state.writer is None and not state.readers:
                state.writer = owner
                state.writer_recursion = 1
                self.acquisitions += 1
                return True
            if state.writer is None and state.readers == {owner}:
                # Upgrade: the sole reader becomes the writer.
                state.readers.clear()
                state.writer = owner
                state.writer_recursion = 1
                self.acquisitions += 1
                return True
        if (owner, mode) not in state.waiters:
            state.waiters.append((owner, mode))
        self.contended_acquisitions += 1
        return False

    def cancel_wait(self, latch_id: int, owner: object) -> None:
        state = self._latches.get(latch_id)
        if state is None:
            return
        state.waiters = [
            (o, m) for o, m in state.waiters if o is not owner
        ]

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release(self, latch_id: int, owner: object
                ) -> List[Tuple[object, str]]:
        """Release one hold; returns waiters granted as a result."""
        state = self._latches.get(latch_id)
        if state is None:
            return []
        if state.writer is owner:
            state.writer_recursion -= 1
            if state.writer_recursion > 0:
                return []
            state.writer = None
        elif owner in state.readers:
            state.readers.remove(owner)
        else:
            return []  # not a holder (compensated release)
        return self._grant_waiters(state)

    def _grant_waiters(self, state: RWLatchState
                       ) -> List[Tuple[object, str]]:
        granted: List[Tuple[object, str]] = []
        while state.waiters:
            owner, mode = state.waiters[0]
            if mode == WRITE:
                if state.writer is None and not state.readers:
                    state.waiters.pop(0)
                    state.writer = owner
                    state.writer_recursion = 1
                    granted.append((owner, WRITE))
                break  # a waiting writer blocks everything behind it
            if state.writer is not None:
                break
            state.waiters.pop(0)
            state.readers.add(owner)
            granted.append((owner, READ))
        return granted

    def release_all(self, latch_ids: List[int], owner: object
                    ) -> List[Tuple[int, object, str]]:
        """Compensation for rewinds; returns (latch, owner, mode) grants."""
        granted = []
        for latch_id in latch_ids:
            state = self._latches.get(latch_id)
            if state is None:
                continue
            if state.writer is owner:
                state.writer = None
                state.writer_recursion = 0
            state.readers.discard(owner)
            for winner, mode in self._grant_waiters(state):
                granted.append((latch_id, winner, mode))
        return granted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders_of(self, latch_id: int) -> Tuple[Optional[object],
                                                 Set[object]]:
        state = self._latches.get(latch_id)
        if state is None:
            return None, set()
        return state.writer, set(state.readers)

    def waiters_of(self, latch_id: int) -> List[Tuple[object, str]]:
        state = self._latches.get(latch_id)
        return list(state.waiters) if state else []
