"""The paper's contribution: TLS with sub-thread checkpointing.

``TLSEngine`` implements the protocol of Sections 2 and 3 — epochs,
hardware thread contexts (one per sub-thread), primary and secondary
violations with sub-thread start tables, homefree-token commit, and the
hardware dependence profiler.
"""

from .accounting import Category, CycleCounters
from .engine import RewindAction, TLSConfig, TLSEngine
from .epoch import EpochExecution, EpochStatus, SubThreadCheckpoint
from .latches import LatchTable
from .prediction import ViolatingLoadPredictor
from .profiling import DependenceProfiler, ExposedLoadTable, ProfiledDependence
from .rwlatches import READ, WRITE, RWLatchTable
from .starttable import SubThreadStartTable

__all__ = [
    "Category",
    "CycleCounters",
    "RewindAction",
    "TLSConfig",
    "TLSEngine",
    "EpochExecution",
    "EpochStatus",
    "SubThreadCheckpoint",
    "LatchTable",
    "ViolatingLoadPredictor",
    "READ",
    "WRITE",
    "RWLatchTable",
    "DependenceProfiler",
    "ExposedLoadTable",
    "ProfiledDependence",
    "SubThreadStartTable",
]
