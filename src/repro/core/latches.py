"""Latch table for escaped-speculation synchronization.

The parallelized transactions still use short-duration latches inside the
storage engine (buffer-pool page latches, the tree latch).  Following the
paper's database work, latch operations execute as *escaped* speculation:
they take effect immediately and globally, and a speculative epoch that
blocks on a held latch accrues Synchronization stall cycles (the "Latch
Stall" component of Figure 5).

When a sub-thread is rewound, latches it acquired are released
(compensation), waking any waiters.  Latch acquisition in the traces
follows a fixed ordering discipline (tree latch before page latch, pages
by level), so waits-for cycles cannot form; the machine nevertheless has a
deadlock breaker as a safety net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class LatchState:
    holder: Optional[object] = None  # the EpochExecution (or serial token)
    recursion: int = 0
    waiters: List[object] = field(default_factory=list)


class LatchTable:
    """Global latch state; timing is handled by the machine."""

    def __init__(self):
        self._latches: Dict[int, LatchState] = {}
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def _state(self, latch_id: int) -> LatchState:
        state = self._latches.get(latch_id)
        if state is None:
            state = LatchState()
            self._latches[latch_id] = state
        return state

    def try_acquire(self, latch_id: int, owner: object) -> bool:
        """Acquire if free (or re-entrant); else enqueue and return False."""
        state = self._state(latch_id)
        if state.holder is None:
            state.holder = owner
            state.recursion = 1
            self.acquisitions += 1
            return True
        if state.holder is owner:
            state.recursion += 1
            self.acquisitions += 1
            return True
        if owner not in state.waiters:
            state.waiters.append(owner)
        self.contended_acquisitions += 1
        return False

    def cancel_wait(self, latch_id: int, owner: object) -> None:
        state = self._latches.get(latch_id)
        if state and owner in state.waiters:
            state.waiters.remove(owner)

    def release(self, latch_id: int, owner: object) -> Optional[object]:
        """Release one level of the latch.

        Returns the waiter granted the latch (now its holder), if the
        latch became free and someone was waiting; else None.
        """
        state = self._latches.get(latch_id)
        if state is None or state.holder is not owner:
            # Releases of latches we no longer hold (acquired by rewound
            # code whose compensation already ran) are ignored.
            return None
        state.recursion -= 1
        if state.recursion > 0:
            return None
        state.holder = None
        if state.waiters:
            granted = state.waiters.pop(0)
            state.holder = granted
            state.recursion = 1
            return granted
        return None

    def release_all(self, latch_ids: List[int], owner: object) -> List[object]:
        """Compensation for a rewind: force-release the given latches.

        Returns every waiter granted a latch as a result.
        """
        granted: List[object] = []
        for latch_id in latch_ids:
            state = self._latches.get(latch_id)
            if state is None:
                continue
            if state.holder is owner:
                state.recursion = 0
                state.holder = None
                if state.waiters:
                    winner = state.waiters.pop(0)
                    state.holder = winner
                    state.recursion = 1
                    granted.append(winner)
        return granted

    def holder_of(self, latch_id: int) -> Optional[object]:
        state = self._latches.get(latch_id)
        return state.holder if state else None

    def waiters_of(self, latch_id: int) -> List[object]:
        state = self._latches.get(latch_id)
        return list(state.waiters) if state else []

    def held_by(self, owner: object) -> List[int]:
        return [
            lid
            for lid, state in self._latches.items()
            if state.holder is owner
        ]
