"""Violating-load prediction (Sections 1.2, 2.2 and 5.1).

The paper discusses two prediction-based alternatives/complements to
sub-threads:

* **Dependence synchronization** (Moshovos et al.): predict which loads
  will violate and make them *wait* for the corresponding store instead
  of speculating through.  The paper reports trying this and finding it
  ineffective — "only one of several dynamic instances of the same load
  PC caused the dependence", so a PC-indexed predictor over-synchronizes.
  We implement it (``TLSConfig.sync_predicted_loads``) so the comparison
  can be reproduced.

* **Predictor-guided sub-thread placement** (Section 5.1): "we want to
  start sub-threads before loads which frequently cause violations" — a
  sub-thread checkpoint is opened right before a predicted-violating
  load, so a violation rewinds almost nothing.  Implemented as
  ``TLSConfig.predictor_subthreads``; with a perfect predictor, two
  sub-threads per thread would suffice (the paper's thought experiment).

Both policies share this predictor: a PC-indexed table of saturating
confidence counters trained on actual violations (the load PC recovered
through the exposed-load table, exactly as the profiler does).
"""

from __future__ import annotations

from typing import Dict, Optional


class ViolatingLoadPredictor:
    """PC-indexed saturating-counter predictor of violating loads."""

    def __init__(
        self,
        threshold: int = 1,
        max_confidence: int = 3,
        capacity: int = 256,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.max_confidence = max_confidence
        self.capacity = capacity
        self._confidence: Dict[int, int] = {}
        self.trainings = 0
        self.predictions = 0
        self.hits = 0

    def train(self, load_pc: Optional[int]) -> None:
        """A violation was attributed to ``load_pc``."""
        if load_pc is None:
            return
        self.trainings += 1
        current = self._confidence.get(load_pc, 0)
        if load_pc not in self._confidence and (
            len(self._confidence) >= self.capacity
        ):
            self._evict_weakest()
        self._confidence[load_pc] = min(self.max_confidence, current + 1)

    def cool(self, load_pc: Optional[int]) -> None:
        """Negative feedback: the predicted load committed untroubled."""
        if load_pc is None:
            return
        current = self._confidence.get(load_pc)
        if current is None:
            return
        if current <= 1:
            del self._confidence[load_pc]
        else:
            self._confidence[load_pc] = current - 1

    def _evict_weakest(self) -> None:
        weakest = min(self._confidence, key=self._confidence.get)
        del self._confidence[weakest]

    def predicts_violation(self, load_pc: int) -> bool:
        self.predictions += 1
        hit = self._confidence.get(load_pc, 0) >= self.threshold
        if hit:
            self.hits += 1
        return hit

    def tracked_pcs(self) -> Dict[int, int]:
        return dict(self._confidence)

    def __len__(self) -> int:
        return len(self._confidence)
