"""Timing resources: banked crossbar/L2 occupancy and memory bandwidth.

Table 1 of the paper: the L1s connect to a 4-banked unified L2 through a
crossbar (8 bytes per cycle per bank); main memory sustains one access per
20 cycles; minimum miss latency to the L2 is 10 cycles and to local memory
75 cycles.  We model contention with per-bank and per-channel
"next free cycle" reservations: an access at time *t* begins service at
``max(t, next_free)`` and holds the resource for its occupancy.
"""

from __future__ import annotations

from typing import List


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class BankedResource:
    """N independently-reserved banks selected by address hashing."""

    def __init__(self, n_banks: int, occupancy: int, line_size: int):
        if n_banks < 1:
            raise ValueError("need at least one bank")
        self.n_banks = n_banks
        self.occupancy = occupancy
        self.line_size = line_size
        self._next_free: List[int] = [0] * n_banks
        self.accesses = 0
        self.contention_cycles = 0
        # With power-of-two line size and bank count (the paper's
        # configuration) bank selection is a shift and a mask; fall back
        # to the exact divide/modulo otherwise.
        if _is_pow2(line_size) and _is_pow2(n_banks):
            self._line_shift = line_size.bit_length() - 1
            self._bank_mask = n_banks - 1
        else:
            self._line_shift = None
            self._bank_mask = None

    def bank_of(self, addr: int) -> int:
        if self._bank_mask is not None:
            return (addr >> self._line_shift) & self._bank_mask
        return (addr // self.line_size) % self.n_banks

    def reserve(self, addr: int, now: int) -> int:
        """Reserve the bank for one access; returns the service start time."""
        if self._bank_mask is not None:
            bank = (addr >> self._line_shift) & self._bank_mask
        else:
            bank = (addr // self.line_size) % self.n_banks
        nf = self._next_free
        start = nf[bank]
        if now > start:
            start = now
        else:
            self.contention_cycles += start - now
        nf[bank] = start + self.occupancy
        self.accesses += 1
        return start

    def reset(self) -> None:
        self._next_free = [0] * self.n_banks


class MemoryChannel:
    """Main-memory bandwidth: one access per ``gap`` cycles."""

    def __init__(self, gap: int):
        self.gap = gap
        self._next_free = 0
        self.accesses = 0
        self.contention_cycles = 0

    def reserve(self, now: int) -> int:
        start = max(now, self._next_free)
        self.contention_cycles += start - now
        self._next_free = start + self.gap
        self.accesses += 1
        return start

    def reset(self) -> None:
        self._next_free = 0


class MemorySystemTiming:
    """Composed timing path: L1 miss -> crossbar/L2 bank -> memory.

    ``l2_access(addr, now)`` returns the cycle at which data returns from
    the L2 on an L2 hit; ``memory_access`` the return cycle when the access
    must also go to DRAM.  Stores are modeled as non-blocking (write
    buffer) but still reserve bank/channel slots, so they create
    contention that delays loads — the first-order effect of write-through
    L1s in the paper's design.
    """

    def __init__(
        self,
        l2_banks: int = 4,
        l2_bank_occupancy: int = 4,
        line_size: int = 32,
        l2_latency: int = 10,
        memory_latency: int = 75,
        memory_gap: int = 20,
    ):
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency
        self.banks = BankedResource(l2_banks, l2_bank_occupancy, line_size)
        self.channel = MemoryChannel(memory_gap)

    def l2_access(self, addr: int, now: int) -> int:
        start = self.banks.reserve(addr, now)
        return start + self.l2_latency

    def memory_access(self, addr: int, now: int) -> int:
        start = self.banks.reserve(addr, now)
        mem_start = self.channel.reserve(start + self.l2_latency)
        return mem_start + self.memory_latency

    def extra_memory_transfer(self, now: int) -> int:
        """A background DRAM transfer (writeback / fill side effects)."""
        start = self.channel.reserve(now)
        return start + self.memory_latency

    def reset(self) -> None:
        self.banks.reset()
        self.channel.reset()
