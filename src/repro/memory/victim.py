"""Speculative victim cache (Section 2.1, footnote 1).

A small fully-associative buffer attached to the L2 that catches
speculative cache lines evicted from the regular L2 sets by conflict
misses.  The paper sizes it at 64 entries — "large enough to avoid
stalling threads due to cache overflows for our worst case" (DELIVERY
OUTER with a 4-way 2MB L2 and 8 sub-threads per thread).

Entries are the same :class:`~repro.memory.l2.L2Entry` objects the L2
uses, so commit/squash operations apply uniformly to both structures.
"""

from __future__ import annotations

from typing import List, Optional


class VictimCache:
    """Fully-associative FIFO-with-touch (LRU) victim buffer."""

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: List[object] = []  # LRU first, MRU last
        self.inserts = 0
        self.overflows = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[object]:
        return list(self._entries)

    def contains(self, entry: object) -> bool:
        return entry.in_victim

    def versions_of(self, tag: int) -> List[object]:
        return [e for e in self._entries if e.tag == tag]

    def touch(self, entry: object) -> None:
        """Mark the entry most-recently-used."""
        for i, e in enumerate(self._entries):
            if e is entry:
                self._entries.pop(i)
                self._entries.append(entry)
                self.hits += 1
                return
        raise KeyError("entry not in victim cache")

    def insert(self, entry: object) -> Optional[object]:
        """Add an evicted speculative line.

        Returns the entry that overflowed out of the victim cache (LRU) if
        capacity was exceeded, else None.  A zero-capacity victim cache
        (ablation) overflows the incoming entry itself.
        """
        self.inserts += 1
        if self.capacity == 0:
            self.overflows += 1
            return entry
        overflowed = None
        if len(self._entries) >= self.capacity:
            overflowed = self._entries.pop(0)
            overflowed.in_victim = False
            self.overflows += 1
        self._entries.append(entry)
        entry.in_victim = True
        return overflowed

    def remove(self, entry: object) -> None:
        for i, e in enumerate(self._entries):
            if e is entry:
                self._entries.pop(i)
                entry.in_victim = False
                return
        raise KeyError("entry not in victim cache")
