"""Generic set-associative cache bookkeeping.

This is pure bookkeeping (tags, sets, LRU) shared by the L1 caches; the
speculative L2 (``repro.memory.l2``) has richer per-entry metadata and its
own implementation, but reuses the geometry helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/line-size geometry with address slicing helpers.

    Line size and set count are powers of two, so the address slicing
    used on every simulated memory access reduces to precomputed
    shift/mask constants (stashed as pseudo-fields in ``__post_init__``).
    """

    size_bytes: int
    assoc: int
    line_size: int

    def __post_init__(self):
        if not _is_pow2(self.line_size):
            raise ValueError("line_size must be a power of two")
        if self.size_bytes % (self.assoc * self.line_size) != 0:
            raise ValueError(
                "size must be a multiple of assoc * line_size "
                f"(got {self.size_bytes}, {self.assoc}, {self.line_size})"
            )
        n_sets = self.size_bytes // (self.assoc * self.line_size)
        if not _is_pow2(n_sets):
            raise ValueError("number of sets must be a power of two")
        object.__setattr__(self, "_n_sets", n_sets)
        object.__setattr__(self, "line_shift", self.line_size.bit_length() - 1)
        object.__setattr__(self, "offset_mask", self.line_size - 1)
        object.__setattr__(self, "line_mask", ~(self.line_size - 1))
        object.__setattr__(self, "set_mask", n_sets - 1)

    @property
    def n_sets(self) -> int:
        return self._n_sets

    def line_addr(self, addr: int) -> int:
        """Line-aligned address (the unit of coherence/tracking)."""
        return addr & self.line_mask

    def set_index(self, addr: int) -> int:
        return (addr >> self.line_shift) & self.set_mask

    def tag(self, addr: int) -> int:
        """Full line address doubles as the tag (sets are derived from it)."""
        return addr & self.line_mask

    def lines_touched(self, addr: int, size: int) -> Iterable[int]:
        """Line addresses spanned by an access of ``size`` bytes.

        Almost every access fits in one line; return a 1-tuple there so
        the caller's loop avoids generator overhead.
        """
        mask = self.line_mask
        first = addr & mask
        last = (addr + max(size, 1) - 1) & mask
        if first == last:
            return (first,)
        return range(first, last + 1, self.line_size)


class LRUSet:
    """One cache set with true-LRU replacement.

    Entries are arbitrary objects keyed by tag; most-recently-used order is
    maintained by list position (index 0 = LRU, last = MRU).
    """

    __slots__ = ("assoc", "_order", "_by_tag")

    def __init__(self, assoc: int):
        self.assoc = assoc
        self._order: List[int] = []  # tags, LRU first
        self._by_tag: Dict[int, object] = {}

    def __len__(self) -> int:
        return len(self._by_tag)

    def __contains__(self, tag: int) -> bool:
        return tag in self._by_tag

    def get(self, tag: int, touch: bool = True):
        """Return the entry for ``tag`` (None if absent), updating LRU."""
        entry = self._by_tag.get(tag)
        if entry is not None and touch:
            order = self._order
            if order[-1] != tag:
                order.remove(tag)
                order.append(tag)
        return entry

    def peek(self, tag: int):
        return self._by_tag.get(tag)

    def entries(self) -> List[object]:
        return list(self._by_tag.values())

    def tags(self) -> List[int]:
        return list(self._order)

    def put(self, tag: int, entry: object) -> None:
        """Insert/replace ``tag`` as MRU.  Caller must have made room."""
        if tag in self._by_tag:
            self._order.remove(tag)
        elif len(self._by_tag) >= self.assoc:
            raise RuntimeError("set full; evict first")
        self._by_tag[tag] = entry
        self._order.append(tag)

    def remove(self, tag: int):
        """Remove and return the entry for ``tag`` (None if absent)."""
        entry = self._by_tag.pop(tag, None)
        if entry is not None:
            self._order.remove(tag)
        return entry

    def victim_tag(self, protect=None) -> Optional[int]:
        """LRU tag to evict, skipping tags for which ``protect`` is true.

        Returns None if every entry is protected.
        """
        for tag in self._order:
            if protect is None or not protect(self._by_tag[tag]):
                return tag
        return None

    def is_full(self) -> bool:
        return len(self._by_tag) >= self.assoc


class SimpleCache:
    """A plain set-associative cache of tags (no payload metadata).

    Used for structures that only need presence/LRU behaviour.  Returns
    hit/miss and the evicted tag (if any) on fills.
    """

    def __init__(self, geometry: CacheGeometry):
        self.geom = geometry
        self._sets = [LRUSet(geometry.assoc) for _ in range(geometry.n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, addr: int) -> LRUSet:
        return self._sets[self.geom.set_index(addr)]

    def lookup(self, addr: int) -> bool:
        """True if the line containing ``addr`` is present (touches LRU)."""
        tag = self.geom.tag(addr)
        hit = self._set_for(addr).get(tag) is not None
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def fill(self, addr: int) -> Optional[int]:
        """Bring the line in; returns the evicted line address, if any."""
        tag = self.geom.tag(addr)
        cset = self._set_for(addr)
        if tag in cset:
            cset.get(tag)
            return None
        evicted = None
        if cset.is_full():
            evicted = cset.victim_tag()
            cset.remove(evicted)
        cset.put(tag, True)
        return evicted

    def invalidate(self, addr: int) -> bool:
        tag = self.geom.tag(addr)
        return self._set_for(addr).remove(tag) is not None

    def contains(self, addr: int) -> bool:
        tag = self.geom.tag(addr)
        return self._set_for(addr).peek(tag) is not None
