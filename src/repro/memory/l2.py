"""Shared L2 cache with speculative versioning and sub-thread contexts.

This module implements the paper's central hardware structure (Section 2):
a chip-wide L2 cache that buffers speculative state for *all* speculative
threads, tracking

* **speculative loads at cache-line granularity**, one bit per *thread
  context* (= per sub-thread) per line, and
* **speculative modifications at word granularity**, one word mask per
  thread context per line version,

and that keeps **multiple versions of a cache line in the ways of the same
associative set** — one version per epoch that has speculatively modified
the line, plus the committed version.  Speculative lines evicted from a
set overflow into a small fully-associative victim cache
(:mod:`repro.memory.victim`).

A *thread context* (``ctx``) is an integer naming one sub-thread of one
in-flight epoch.  The L2 itself does not know about epochs or logical
order; it consults a :class:`ContextDirectory` (implemented by the TLS
engine) to map a context to its epoch's logical order and its sub-thread
index.  This mirrors the paper's hardware split: the cache holds the bits,
the TLS logic interprets them.

Violation detection (Section 2.2): when epoch *i* stores to a line, any
logically-later epoch *j* that has speculatively loaded a version of that
line *older than i's version* has consumed stale data and must be
violated.  Loads of versions owned by epochs in ``(i, j]`` are safe — the
loader already saw a value newer than the incoming store.  The L2 reports,
per violated epoch, the earliest sub-thread whose context holds a
qualifying load bit: that is the sub-thread the epoch rewinds to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .cache import CacheGeometry
from .victim import VictimCache

#: Logical order used for the committed version (older than every epoch).
COMMITTED = -1

FULL_MASK_CACHE: Dict[int, int] = {}


def full_mask(n_words: int) -> int:
    mask = FULL_MASK_CACHE.get(n_words)
    if mask is None:
        mask = (1 << n_words) - 1
        FULL_MASK_CACHE[n_words] = mask
    return mask


class ContextDirectory:
    """Interface the TLS engine implements so the L2 can interpret contexts.

    ``order_of(ctx)`` returns the logical order (a monotonically increasing
    global epoch sequence number) of the epoch owning the context, and
    ``subidx_of(ctx)`` the context's sub-thread index within that epoch.
    """

    def order_of(self, ctx: int) -> int:
        raise NotImplementedError

    def subidx_of(self, ctx: int) -> int:
        raise NotImplementedError


@dataclass(slots=True)
class L2Entry:
    """One version of one cache line.

    ``owner`` is the logical order of the epoch owning this speculative
    version, or :data:`COMMITTED` for the architecturally-committed
    version.  ``spec_loaded`` maps context -> loaded word mask (the full
    line mask under the paper's line-granularity load tracking);
    ``spec_mod`` maps context -> speculatively-modified word mask.
    """

    tag: int
    owner: int = COMMITTED
    dirty: bool = False
    spec_loaded: Dict[int, int] = field(default_factory=dict)
    spec_mod: Dict[int, int] = field(default_factory=dict)
    #: Maintained by the victim cache: True while the entry lives there
    #: rather than in its L2 set (turns the membership scan into a flag).
    in_victim: bool = False

    def is_speculative(self) -> bool:
        return (
            self.owner != COMMITTED
            or bool(self.spec_loaded)
            or bool(self.spec_mod)
        )

    def mod_mask(self) -> int:
        mask = 0
        for m in self.spec_mod.values():
            mask |= m
        return mask


@dataclass(slots=True)
class Violation:
    """A dependence violation detected at the L2.

    ``victim_order``: logical order of the epoch that must rewind.
    ``subthread_idx``: earliest sub-thread of that epoch holding a
    qualifying speculative-load bit — the rewind point.
    ``store_ctx`` / ``load_ctx``: contexts of the offending store/load
    (``store_ctx`` is None for non-speculative stores).
    ``tag``: the line address, used by the profiler to recover load PCs.
    """

    victim_order: int
    subthread_idx: int
    load_ctx: int
    tag: int
    store_ctx: Optional[int] = None
    store_pc: Optional[int] = None


class L2Set:
    """An associative set holding line *versions* in LRU order."""

    __slots__ = ("assoc", "_entries")

    def __init__(self, assoc: int):
        self.assoc = assoc
        self._entries: List[L2Entry] = []  # LRU first, MRU last

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[L2Entry]:
        return list(self._entries)

    def versions_of(self, tag: int) -> List[L2Entry]:
        return [e for e in self._entries if e.tag == tag]

    def touch(self, entry: L2Entry) -> None:
        # Identity-based: L2Entry is a value-comparing dataclass and
        # distinct versions can transiently compare equal (e.g. two
        # committed copies mid-merge); LRU must move *this* object.
        for i, e in enumerate(self._entries):
            if e is entry:
                self._entries.pop(i)
                self._entries.append(entry)
                return
        raise ValueError("entry not in set")

    def add(self, entry: L2Entry) -> None:
        if len(self._entries) >= self.assoc:
            raise RuntimeError("L2 set full; evict first")
        self._entries.append(entry)

    def remove(self, entry: L2Entry) -> None:
        for i, e in enumerate(self._entries):
            if e is entry:
                del self._entries[i]
                return
        raise ValueError("entry not in set")

    def is_full(self) -> bool:
        return len(self._entries) >= self.assoc

    def lru_victim(
        self, protect: Callable[[L2Entry], bool]
    ) -> Optional[L2Entry]:
        for entry in self._entries:
            if not protect(entry):
                return entry
        return None


class AccessResult:
    """Outcome of an L2 access, consumed by the machine timing model.

    ``invalidated_lines`` and ``overflow_squash`` start as a shared empty
    tuple and are swapped for real lists on first write (most accesses
    invalidate nothing, so two eager list allocations per access were
    measurable); consumers only test truthiness and iterate, which both
    containers support.
    """

    __slots__ = ("hit", "entry", "violations", "invalidated_lines",
                 "overflow_squash", "memory_accesses")

    def __init__(self, hit: bool, entry: Optional[L2Entry] = None):
        self.hit = hit
        #: Entry the access resolved to (None if a pure miss with no fill).
        self.entry = entry
        #: Violations raised by this access (stores only).
        self.violations: List[Violation] = []
        #: Committed lines dropped from the chip (machine invalidates L1s).
        self.invalidated_lines = ()
        #: Epoch orders whose state overflowed and must be squashed.
        self.overflow_squash = ()
        #: Number of memory (DRAM) transfers this access required.
        self.memory_accesses = 0


class SpeculativeL2:
    """The shared speculative L2 + victim cache pair."""

    def __init__(
        self,
        geometry: CacheGeometry,
        directory: ContextDirectory,
        victim_entries: int = 64,
        word_size: int = 4,
        line_granularity_loads: bool = True,
    ):
        self.geom = geometry
        self.directory = directory
        self.word_size = word_size
        self.n_words = geometry.line_size // word_size
        #: Paper default: loads tracked at line granularity (violations may
        #: include false sharing).  Set False for the word-granularity
        #: ablation.
        self.line_granularity_loads = line_granularity_loads
        #: set index -> L2Set, allocated on first touch: a 2MB cache has
        #: 16k sets and a short run touches a few hundred, so eager
        #: allocation would dominate Machine construction.
        self._sets: Dict[int, L2Set] = {}
        self._assoc = geometry.assoc
        # Hot-path constants (geometry is immutable).
        self._set_shift = geometry.line_shift
        self._set_mask = geometry.set_mask
        self._offset_mask = geometry.offset_mask
        self._full_line_mask = full_mask(self.n_words)
        self.victim = VictimCache(capacity=victim_entries)
        #: Columnar mirror of the on-chip tag state: line tag -> every
        #: on-chip version of the line (its set's ways plus the victim
        #: cache), in installation order.  Maintained transactionally at
        #: the three points where an entry joins or leaves the chip
        #: (``_install`` / ``_handle_overflow`` / ``_drop``); moves
        #: between a set and the victim cache and owner mutations
        #: (commit, load-bit rehoming) need no index update because the
        #: key is the tag alone.  The single-line fast paths resolve
        #: version selection against this index in O(versions-of-line)
        #: instead of scanning every way of the set plus the whole
        #: victim cache.
        self._line_versions: Dict[int, List[L2Entry]] = {}
        #: ctx -> set of line tags where the ctx has speculative state.
        self._ctx_lines: Dict[int, Set[int]] = {}
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.version_allocations = 0
        self.victim_spills = 0
        self.overflow_squashes = 0
        self.violations_detected = 0

    # ------------------------------------------------------------------
    # Geometry / lookup helpers
    # ------------------------------------------------------------------

    def _set_for(self, tag: int) -> L2Set:
        idx = (tag >> self._set_shift) & self._set_mask
        cset = self._sets.get(idx)
        if cset is None:
            cset = L2Set(self._assoc)
            self._sets[idx] = cset
        return cset

    def word_mask(self, addr: int, size: int) -> int:
        """Word mask within the line for an access at ``addr``/``size``."""
        ws = self.word_size
        off = addr & self._offset_mask
        first = off // ws
        last = (off + (size if size > 1 else 1) - 1) // ws
        if last >= self.n_words:
            last = self.n_words - 1
        return ((1 << (last - first + 1)) - 1) << first

    def _versions(self, tag: int) -> List[L2Entry]:
        """All on-chip versions of a line (set + victim cache).

        Served from the per-line version index; returns a copy so
        callers may install/drop entries while iterating a snapshot.
        """
        lst = self._line_versions.get(tag)
        return list(lst) if lst else []

    def _unindex(self, entry: L2Entry) -> None:
        """Remove an entry leaving the chip from the version index."""
        lst = self._line_versions.get(entry.tag)
        if lst is not None:
            for i, e in enumerate(lst):
                if e is entry:
                    del lst[i]
                    break
            if not lst:
                del self._line_versions[entry.tag]

    def _note_ctx_line(self, ctx: int, tag: int) -> None:
        lines = self._ctx_lines.get(ctx)
        if lines is None:
            lines = set()
            self._ctx_lines[ctx] = lines
        lines.add(tag)

    def _read_version(
        self, versions: List[L2Entry], order: int
    ) -> Optional[L2Entry]:
        """The version an epoch of logical ``order`` should read.

        Speculative versioning: the newest version owned by an epoch with
        order <= the reader's order (committed counts as order -1).
        """
        best: Optional[L2Entry] = None
        for entry in versions:
            if entry.owner <= order:
                if best is None or entry.owner > best.owner:
                    best = entry
        return best

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def load(
        self,
        addr: int,
        size: int,
        order: int,
        ctx: Optional[int],
        exposed: bool,
    ) -> AccessResult:
        """A load by the epoch with logical ``order`` (ctx = its current
        sub-thread context; None for non-speculative execution).

        ``exposed`` is True when the loading epoch has not previously
        stored to every word of the access (decided by the TLS engine's
        per-epoch store mask); only exposed loads set speculative-load
        bits, mirroring the exposed-load tracking of basic TLS hardware.
        """
        result = AccessResult(hit=True)
        for tag in self.geom.lines_touched(addr, size):
            versions = self._versions(tag)
            entry = self._read_version(versions, order)
            if entry is None:
                # Miss: fetch the committed line from memory.
                result.hit = False
                result.memory_accesses += 1
                entry = self._install(
                    L2Entry(tag=tag, owner=COMMITTED), result
                )
                if entry is None:
                    # Pathological set pressure; treat as uncached access.
                    continue
            else:
                self._promote(entry)
            result.entry = entry
            if ctx is not None and exposed:
                mask = (
                    self._full_line_mask
                    if self.line_granularity_loads
                    else self.word_mask(addr, size)
                )
                entry.spec_loaded[ctx] = entry.spec_loaded.get(ctx, 0) | mask
                self._note_ctx_line(ctx, tag)
        if result.hit:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def _promote(self, entry: L2Entry) -> None:
        """Touch for LRU; pull a victim-cache entry back into its set."""
        if entry.in_victim:
            cset = self._set_for(entry.tag)
            if not cset.is_full():
                self.victim.remove(entry)
                cset.add(entry)
            else:
                self.victim.touch(entry)
        else:
            self._set_for(entry.tag).touch(entry)

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def store(
        self,
        addr: int,
        size: int,
        order: int,
        ctx: Optional[int],
        store_pc: Optional[int] = None,
    ) -> AccessResult:
        """A store by the epoch with logical ``order``.

        Write-through L1s mean every store reaches the L2 immediately —
        this is the aggressive update propagation of Section 2.1.  The
        store (a) raises violations against logically-later epochs that
        loaded a stale version, and (b) creates or updates this epoch's
        speculative version of the line (word-granularity mod bits), or
        the committed version when the store is non-speculative.
        """
        result = AccessResult(hit=True)
        for tag in self.geom.lines_touched(addr, size):
            words = self.word_mask(addr, size)
            versions = self._versions(tag)
            if self._ctx_lines:
                # No context holds speculative-load bits anywhere when the
                # index is empty, so the scan cannot find a violation.
                result.violations.extend(
                    self._detect_violations(
                        tag, versions, words, order, ctx, store_pc
                    )
                )
            target = None
            for entry in versions:
                if entry.owner == (COMMITTED if ctx is None else order):
                    target = entry
                    break
            if target is None and ctx is None:
                # Non-speculative store with no committed copy on chip:
                # write-allocate from memory.
                committed = [e for e in versions if e.owner == COMMITTED]
                if not committed:
                    result.hit = False
                    result.memory_accesses += 1
                target = self._install(
                    L2Entry(tag=tag, owner=COMMITTED), result
                )
            elif target is None:
                # First speculative store to this line by this epoch:
                # allocate a new version.  If no copy is on chip at all the
                # line must first be fetched (write-allocate).
                if not versions:
                    result.hit = False
                    result.memory_accesses += 1
                    self._install(L2Entry(tag=tag, owner=COMMITTED), result)
                self.version_allocations += 1
                target = self._install(L2Entry(tag=tag, owner=order), result)
            if target is None:
                continue
            self._promote(target)
            if ctx is None:
                target.dirty = True
            else:
                target.spec_mod[ctx] = target.spec_mod.get(ctx, 0) | words
                self._note_ctx_line(ctx, tag)
            result.entry = target
        if result.hit:
            self.hits += 1
        else:
            self.misses += 1
        return result

    # ------------------------------------------------------------------
    # Single-line fast paths (compiled traces)
    # ------------------------------------------------------------------

    def load_line(
        self,
        tag: int,
        order: int,
        ctx: Optional[int],
        exposed: bool,
        load_bits: int,
    ) -> Tuple[bool, Optional[AccessResult]]:
        """Single-line twin of :meth:`load` with a precompiled bit mask.

        The trace compiler resolves each access into per-line ``(tag,
        load_bits)`` pairs up front, so this path skips the line-walk and
        mask arithmetic, and on a clean hit it allocates no
        :class:`AccessResult` at all.  Returns ``(hit, result)`` where
        ``result`` is None for a clean hit; every state change and
        statistic matches ``load`` exactly.
        """
        # _read_version against the per-line version index: only this
        # line's versions are visited, never the set's other ways or the
        # victim cache (strict > keeps the first-seen entry on ties
        # exactly as the list-based scan did).
        lst = self._line_versions.get(tag)
        entry = None
        if lst is not None:
            for e in lst:
                if e.owner <= order and (
                    entry is None or e.owner > entry.owner
                ):
                    entry = e
        if entry is None:
            result = AccessResult(hit=False)
            result.memory_accesses = 1
            entry = self._install(L2Entry(tag=tag, owner=COMMITTED), result)
            self.misses += 1
            if entry is None:
                return False, result
            hit = False
        else:
            # _promote, inlined for the common in-set case.
            if entry.in_victim:
                self._promote(entry)
            else:
                sentries = self._sets[
                    (tag >> self._set_shift) & self._set_mask
                ]._entries
                if sentries[-1] is not entry:
                    for si, se in enumerate(sentries):
                        if se is entry:
                            del sentries[si]
                            break
                    sentries.append(entry)
            self.hits += 1
            hit = True
            result = None
        if ctx is not None and exposed:
            entry.spec_loaded[ctx] = entry.spec_loaded.get(ctx, 0) | load_bits
            # _note_ctx_line, inlined on the hot path.
            lines = self._ctx_lines.get(ctx)
            if lines is None:
                self._ctx_lines[ctx] = lines = set()
            lines.add(tag)
        return hit, result

    def store_line(
        self,
        tag: int,
        order: int,
        ctx: Optional[int],
        words: int,
        store_pc: Optional[int] = None,
        detect: bool = True,
    ) -> Tuple[bool, Optional[AccessResult]]:
        """Single-line twin of :meth:`store` with a precompiled word mask.

        ``detect=False`` skips the violation scan; the machine passes it
        for region-private lines, where only the storing epoch ever holds
        bits on the line so the scan provably finds nothing.  Returns
        ``(hit, result)`` with ``result`` None when the store hit an
        existing version and raised no violations.
        """
        # The version index holds exactly this line's on-chip versions;
        # the scan below never installs or drops, so the live list is
        # safe to read (the installs at the bottom run after the last
        # read of ``versions``).
        versions = self._line_versions.get(tag) or ()
        violations: Tuple[Violation, ...] = ()
        # No on-chip versions means no recorded load bits: the violation
        # scan provably finds nothing, so skip the call.
        if detect and versions and self._ctx_lines:
            violations = self._detect_violations(
                tag, versions, words, order, ctx, store_pc
            )
        want = COMMITTED if ctx is None else order
        target = None
        for entry in versions:
            if entry.owner == want:
                target = entry
                break
        hit = True
        result = None
        if target is None:
            result = AccessResult(hit=True)
            if ctx is None:
                committed = False
                for entry in versions:
                    if entry.owner == COMMITTED:
                        committed = True
                        break
                if not committed:
                    hit = False
                    result.hit = False
                    result.memory_accesses += 1
                target = self._install(
                    L2Entry(tag=tag, owner=COMMITTED), result
                )
            else:
                if not versions:
                    hit = False
                    result.hit = False
                    result.memory_accesses += 1
                    self._install(L2Entry(tag=tag, owner=COMMITTED), result)
                self.version_allocations += 1
                target = self._install(L2Entry(tag=tag, owner=order), result)
        if violations:
            if result is None:
                result = AccessResult(hit=True)
            result.violations.extend(violations)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if target is None:
            return hit, result
        # _promote, inlined for the common in-set case (a freshly
        # installed target always lands in this same set).
        if target.in_victim:
            self._promote(target)
        else:
            sentries = self._sets[
                (tag >> self._set_shift) & self._set_mask
            ]._entries
            if sentries[-1] is not target:
                for si, se in enumerate(sentries):
                    if se is target:
                        del sentries[si]
                        break
                sentries.append(target)
        if ctx is None:
            target.dirty = True
        else:
            target.spec_mod[ctx] = target.spec_mod.get(ctx, 0) | words
            # _note_ctx_line, inlined on the hot path.
            lines = self._ctx_lines.get(ctx)
            if lines is None:
                self._ctx_lines[ctx] = lines = set()
            lines.add(tag)
        return hit, result

    def _detect_violations(
        self,
        tag: int,
        versions: List[L2Entry],
        words: int,
        order: int,
        ctx: Optional[int],
        store_pc: Optional[int],
    ) -> Tuple[Violation, ...]:
        """Find epochs violated by a store of ``words`` at logical ``order``."""
        per_victim: Dict[int, Tuple[int, int]] = {}
        for entry in versions:
            if entry.owner > order:
                # This version is newer than the store; its readers are safe.
                continue
            for load_ctx, loaded in entry.spec_loaded.items():
                if not (loaded & words):
                    continue
                victim_order = self.directory.order_of(load_ctx)
                if victim_order <= order:
                    continue  # loader is the storer or logically earlier
                subidx = self.directory.subidx_of(load_ctx)
                prev = per_victim.get(victim_order)
                if prev is None or subidx < prev[0]:
                    per_victim[victim_order] = (subidx, load_ctx)
        if not per_victim:
            return ()
        out = []
        for victim_order, (subidx, load_ctx) in sorted(per_victim.items()):
            self.violations_detected += 1
            out.append(
                Violation(
                    victim_order=victim_order,
                    subthread_idx=subidx,
                    load_ctx=load_ctx,
                    tag=tag,
                    store_ctx=ctx,
                    store_pc=store_pc,
                )
            )
        return tuple(out)

    # ------------------------------------------------------------------
    # Allocation / eviction
    # ------------------------------------------------------------------

    def _install(
        self, entry: L2Entry, result: AccessResult
    ) -> Optional[L2Entry]:
        """Place a new entry in its set, evicting as needed.

        Committed victims are written back (if dirty) and dropped — the
        machine must invalidate L1 copies to preserve inclusion.
        Speculative victims spill to the victim cache; if the victim cache
        in turn overflows a speculative line, the epochs owning that state
        lose it and must be squashed (reported via ``overflow_squash``).
        The paper avoids this by sizing the victim cache at 64 entries;
        we implement the squash so overflow is *safe*, and count it.
        """
        cset = self._set_for(entry.tag)
        while cset.is_full():
            victim = cset.lru_victim(protect=lambda e: False)
            assert victim is not None
            cset.remove(victim)
            if victim.is_speculative():
                self.victim_spills += 1
                # Spilled entries stay on chip: no index change.
                overflowed = self.victim.insert(victim)
                if overflowed is not None:
                    self._handle_overflow(overflowed, result)
            else:
                self._unindex(victim)
                if victim.dirty:
                    result.memory_accesses += 1
                if result.invalidated_lines:
                    result.invalidated_lines.append(victim.tag)
                else:
                    result.invalidated_lines = [victim.tag]
        cset.add(entry)
        self._line_versions.setdefault(entry.tag, []).append(entry)
        return entry

    def _handle_overflow(
        self, overflowed: L2Entry, result: AccessResult
    ) -> None:
        """A speculative line fell off the end of the victim cache."""
        self._unindex(overflowed)  # off chip either way below
        if not overflowed.is_speculative():
            if overflowed.dirty:
                result.memory_accesses += 1
            if result.invalidated_lines:
                result.invalidated_lines.append(overflowed.tag)
            else:
                result.invalidated_lines = [overflowed.tag]
            return
        self.overflow_squashes += 1
        owners: Set[int] = set()
        if overflowed.owner != COMMITTED:
            owners.add(overflowed.owner)
        for load_ctx in overflowed.spec_loaded:
            owners.add(self.directory.order_of(load_ctx))
        for mod_ctx in overflowed.spec_mod:
            owners.add(self.directory.order_of(mod_ctx))
        result.overflow_squash = list(result.overflow_squash) + sorted(owners)
        # The state is lost regardless; drop the line.
        if result.invalidated_lines:
            result.invalidated_lines.append(overflowed.tag)
        else:
            result.invalidated_lines = [overflowed.tag]

    # ------------------------------------------------------------------
    # Commit / squash (driven by the TLS engine)
    # ------------------------------------------------------------------

    def commit_epoch(self, order: int, ctxs: Iterable[int]) -> None:
        """Merge the epoch's speculative versions into committed state.

        Called when the epoch holds the homefree token: its version of each
        line becomes the committed version (old committed copies are
        dropped, freeing ways), and all its load bits are cleared.
        """
        ctx_list = list(ctxs)
        tags: Set[int] = set()
        for ctx in ctx_list:
            tags.update(self._ctx_lines.pop(ctx, ()))
        for tag in sorted(tags):
            # One snapshot serves both walks: committing an owner does not
            # change which entries hold the tag, and the inner drop only
            # affects entries this same snapshot already enumerates.
            versions = self._versions(tag)
            for entry in versions:
                if entry.owner == order:
                    entry.owner = COMMITTED
                    entry.dirty = True
                    entry.spec_mod.clear()
                    # Drop the stale committed version(s), if any remain,
                    # preserving load bits later epochs recorded on them
                    # (their loads of words this epoch never wrote are
                    # still live dependences).
                    for other in versions:
                        if other is not entry and other.owner == COMMITTED:
                            for ctx, mask in other.spec_loaded.items():
                                entry.spec_loaded[ctx] = (
                                    entry.spec_loaded.get(ctx, 0) | mask
                                )
                            self._drop(other)
                for ctx in ctx_list:
                    entry.spec_loaded.pop(ctx, None)

    def squash_ctxs(self, order: int, ctxs: Iterable[int]) -> List[int]:
        """Discard all speculative state belonging to ``ctxs``.

        Used for violation rewind (ctxs = contexts of sub-threads at or
        after the rewind point) and for full epoch squash.  Versions owned
        by the epoch are dropped once no surviving sub-thread context has
        modified words in them.  Returns the line tags touched (tests use
        this; the machine does not need it).
        """
        ctx_list = list(ctxs)
        tags: Set[int] = set()
        for ctx in ctx_list:
            tags.update(self._ctx_lines.pop(ctx, ()))
        for tag in sorted(tags):
            doomed = []
            for entry in self._versions(tag):
                for ctx in ctx_list:
                    entry.spec_loaded.pop(ctx, None)
                    if entry.owner == order:
                        entry.spec_mod.pop(ctx, None)
                if entry.owner == order and not entry.spec_mod:
                    doomed.append(entry)
            for entry in doomed:
                # Logically-later epochs that loaded from this version
                # recorded their exposed-load bits here; those bits must
                # survive the squash or the readers' future violations
                # are silently missed (their L1 lines stay ``notified``
                # and never re-inform the L2).
                if entry.spec_loaded and not self._rehome_load_bits(entry):
                    continue  # entry recycled as the committed version
                self._drop(entry)
        return sorted(tags)

    def _rehome_load_bits(self, entry: L2Entry) -> bool:
        """Move surviving ``spec_loaded`` bits off a doomed version.

        Merges them into the line's committed version when one is on
        chip (returns True: caller drops ``entry``); otherwise recycles
        ``entry`` itself as a clean committed copy of the line so the
        bits keep a home (returns False: caller must keep it).
        """
        for other in self._versions(entry.tag):
            if other is not entry and other.owner == COMMITTED:
                for ctx, mask in entry.spec_loaded.items():
                    other.spec_loaded[ctx] = (
                        other.spec_loaded.get(ctx, 0) | mask
                    )
                entry.spec_loaded.clear()
                return True
        entry.owner = COMMITTED
        entry.dirty = False
        entry.spec_mod.clear()
        return False

    def _drop(self, entry: L2Entry) -> None:
        if entry.in_victim:
            self.victim.remove(entry)
            self._unindex(entry)
            return
        cset = self._set_for(entry.tag)
        if any(e is entry for e in cset.entries()):
            cset.remove(entry)
            self._unindex(entry)

    # ------------------------------------------------------------------
    # Introspection (tests / invariant checks)
    # ------------------------------------------------------------------

    def all_entries(self) -> List[L2Entry]:
        out: List[L2Entry] = []
        for cset in self._sets.values():
            out.extend(cset.entries())
        out.extend(self.victim.entries())
        return out

    def speculative_entries(self) -> List[L2Entry]:
        return [e for e in self.all_entries() if e.is_speculative()]

    def versions_of_line(self, addr: int) -> List[L2Entry]:
        return self._versions(self.geom.line_addr(addr))

    def check_invariants(self) -> None:
        """Structural invariants; raises AssertionError on violation."""
        for idx, cset in self._sets.items():
            assert len(cset) <= cset.assoc, f"set {idx} over-full"
            seen = set()
            for entry in cset.entries():
                assert self.geom.set_index(entry.tag) == idx, (
                    "entry in wrong set"
                )
                key = (entry.tag, entry.owner)
                assert key not in seen, f"duplicate version {key}"
                seen.add(key)
        assert len(self.victim.entries()) <= self.victim.capacity
        # The per-line version index must mirror the on-chip entries
        # (sets + victim cache) exactly, entry for entry.
        expected: Dict[int, List[int]] = {}
        for cset in self._sets.values():
            for entry in cset._entries:
                expected.setdefault(entry.tag, []).append(id(entry))
        for entry in self.victim._entries:
            expected.setdefault(entry.tag, []).append(id(entry))
        actual = {
            tag: sorted(id(e) for e in lst)
            for tag, lst in self._line_versions.items()
        }
        assert actual == {
            tag: sorted(ids) for tag, ids in expected.items()
        }, "L2 line-version index diverged from on-chip entries"
