"""Private write-through L1 data cache with speculative-line tracking.

Per the paper (Section 2.1), the L1 caches are write-through so stores
propagate aggressively to the shared L2 where logically-later threads can
consume them; the L1s are *unaware of sub-threads*.  Each L1 line carries:

``spec``
    The line was speculatively accessed by the epoch currently running on
    this CPU.  On any violation delivered to this CPU, every ``spec`` line
    is flash-invalidated and must be refetched from L2 (the paper found
    per-sub-thread L1 tracking "not worthwhile").

``notified``
    The L2 has already been told about a speculative load of this line by
    the current epoch (so its per-context speculative-load bit is set).
    Later loads of the line by the same epoch can then hit purely in L1
    without informing the L2 — exact, not just conservative, because
    violations rewind to the *earliest* sub-thread that loaded the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cache import CacheGeometry, LRUSet


@dataclass(slots=True)
class L1Line:
    tag: int
    spec: bool = False
    notified: bool = False
    #: Highest sub-thread index that speculatively touched the line
    #: (-1 = none).  Only used when the optional per-sub-thread L1
    #: tracking is enabled; the paper's design leaves the L1s
    #: sub-thread-unaware and found the extension "not worthwhile".
    subidx: int = -1


class L1Cache:
    """One CPU's private write-through L1 data cache."""

    def __init__(self, geometry: CacheGeometry):
        self.geom = geometry
        self._sets = [LRUSet(geometry.assoc) for _ in range(geometry.n_sets)]
        self._set_shift = geometry.line_shift
        self._set_mask = geometry.set_mask
        self.hits = 0
        self.misses = 0
        self.spec_invalidations = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def _set_for(self, line_addr: int) -> LRUSet:
        return self._sets[(line_addr >> self._set_shift) & self._set_mask]

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[L1Line]:
        return self._set_for(line_addr).get(line_addr, touch=touch)

    def access(self, line_addr: int) -> bool:
        """Reference the line; returns True on hit (updates LRU/stats)."""
        cset = self._sets[(line_addr >> self._set_shift) & self._set_mask]
        if cset.get(line_addr) is not None:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line_addr: int, spec: bool,
             subidx: int = -1) -> Optional[L1Line]:
        """Install a line fetched from L2.

        Returns the evicted line (if any).  Write-through means an evicted
        line is never dirty with respect to L2, so eviction needs no
        writeback; speculative L1 lines can be silently dropped because the
        L2 keeps inclusion for all speculative state.
        """
        cset = self._set_for(line_addr)
        existing = cset.get(line_addr)
        if existing is not None:
            existing.spec = existing.spec or spec
            if spec:
                existing.subidx = max(existing.subidx, subidx)
            return None
        evicted = None
        if cset.is_full():
            victim_tag = cset.victim_tag()
            evicted = cset.remove(victim_tag)
        line = L1Line(tag=line_addr, spec=spec,
                      subidx=subidx if spec else -1)
        cset.put(line_addr, line)
        return evicted

    def mark_spec(self, line_addr: int, notified: bool,
                  subidx: int = -1) -> None:
        line = self.lookup(line_addr, touch=False)
        if line is not None:
            line.spec = True
            line.subidx = max(line.subidx, subidx)
            if notified:
                line.notified = True

    def is_notified(self, line_addr: int) -> bool:
        line = self.lookup(line_addr, touch=False)
        return line is not None and line.notified

    # ------------------------------------------------------------------
    # Invalidation (violations, epoch boundaries, L2 inclusion)
    # ------------------------------------------------------------------

    def invalidate(self, line_addr: int) -> bool:
        """Invalidate one line (L2 eviction inclusion, external store)."""
        return self._set_for(line_addr).remove(line_addr) is not None

    def flash_invalidate_spec(self, from_subidx: int = None) -> int:
        """Drop speculatively-accessed lines (violation recovery).

        With the paper's sub-thread-unaware L1s (``from_subidx=None``)
        every speculative line goes; with the optional per-sub-thread
        tracking only lines touched by sub-threads at or after the rewind
        point are dropped.  Returns the number of lines invalidated; the
        subsequent refetches from L2 are the recovery cost.
        """
        count = 0
        for cset in self._sets:
            for tag in list(cset.tags()):
                line = cset.peek(tag)
                if line is None or not line.spec:
                    continue
                if from_subidx is not None and line.subidx < from_subidx:
                    continue
                cset.remove(tag)
                count += 1
        self.spec_invalidations += count
        return count

    def clear_spec_marks(self) -> None:
        """New epoch begins: lines stay cached but lose speculative marks."""
        for cset in self._sets:
            for entry in cset.entries():
                entry.spec = False
                entry.notified = False
                entry.subidx = -1

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------

    def resident_lines(self) -> List[L1Line]:
        out: List[L1Line] = []
        for cset in self._sets:
            out.extend(cset.entries())
        return out

    def spec_lines(self) -> List[L1Line]:
        return [l for l in self.resident_lines() if l.spec]
