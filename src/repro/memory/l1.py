"""Private write-through L1 data cache with speculative-line tracking.

Per the paper (Section 2.1), the L1 caches are write-through so stores
propagate aggressively to the shared L2 where logically-later threads can
consume them; the L1s are *unaware of sub-threads*.  Each L1 line carries:

``spec``
    The line was speculatively accessed by the epoch currently running on
    this CPU.  On any violation delivered to this CPU, every ``spec`` line
    is flash-invalidated and must be refetched from L2 (the paper found
    per-sub-thread L1 tracking "not worthwhile").

``notified``
    The L2 has already been told about a speculative load of this line by
    the current epoch (so its per-context speculative-load bit is set).
    Later loads of the line by the same epoch can then hit purely in L1
    without informing the L2 — exact, not just conservative, because
    violations rewind to the *earliest* sub-thread that loaded the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .cache import CacheGeometry, LRUSet


@dataclass(slots=True)
class L1Line:
    tag: int
    spec: bool = False
    notified: bool = False
    #: Highest sub-thread index that speculatively touched the line
    #: (-1 = none).  Only used when the optional per-sub-thread L1
    #: tracking is enabled; the paper's design leaves the L1s
    #: sub-thread-unaware and found the extension "not worthwhile".
    subidx: int = -1


class L1Cache:
    """One CPU's private write-through L1 data cache."""

    def __init__(self, geometry: CacheGeometry):
        self.geom = geometry
        #: set index -> LRUSet, allocated on first touch (most sets of a
        #: 32KB cache go untouched in short runs).
        self._sets: Dict[int, LRUSet] = {}
        self._assoc = geometry.assoc
        self._set_shift = geometry.line_shift
        self._set_mask = geometry.set_mask
        #: Tags of lines currently carrying a speculative mark.  Kept
        #: exactly in sync by fill/mark_spec/invalidate/flash/clear so
        #: the epoch-boundary sweeps touch only marked lines instead of
        #: walking every set.
        self._spec_tags: set = set()
        #: Tags of lines whose ``notified`` flag is set — the columnar
        #: mirror of the per-line flag, kept exactly in sync by every
        #: mutation site (fill/mark_spec/invalidate/flash/clear and the
        #: machine's inlined notify) so the bulk load resolver
        #: (repro.memory.columnar) tests eligibility with one set
        #: membership instead of chasing the L1Line object.  Always a
        #: subset of ``_spec_tags``.
        self._notified_tags: set = set()
        #: Tags of all resident lines (lets inclusion/invalidation walks
        #: reject absent lines — the overwhelmingly common case — with
        #: one set-membership test instead of a per-set lookup).
        self.resident: set = set()
        self.hits = 0
        self.misses = 0
        self.spec_invalidations = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def _set_for(self, line_addr: int) -> LRUSet:
        idx = (line_addr >> self._set_shift) & self._set_mask
        cset = self._sets.get(idx)
        if cset is None:
            cset = LRUSet(self._assoc)
            self._sets[idx] = cset
        return cset

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[L1Line]:
        return self._set_for(line_addr).get(line_addr, touch=touch)

    def access(self, line_addr: int) -> bool:
        """Reference the line; returns True on hit (updates LRU/stats)."""
        if line_addr not in self.resident:
            self.misses += 1
            return False
        # Present for sure; the set lookup just refreshes LRU order.
        self._sets[(line_addr >> self._set_shift) & self._set_mask].get(
            line_addr
        )
        self.hits += 1
        return True

    def fill(self, line_addr: int, spec: bool, subidx: int = -1,
             notified: bool = False) -> Optional[L1Line]:
        """Install a line fetched from L2.

        Returns the evicted line (if any).  Write-through means an evicted
        line is never dirty with respect to L2, so eviction needs no
        writeback; speculative L1 lines can be silently dropped because the
        L2 keeps inclusion for all speculative state.

        ``notified=True`` folds the common fill-then-``mark_spec`` pair
        into one lookup (only meaningful together with ``spec=True``).

        The LRU set is manipulated directly here (rather than through the
        LRUSet API) — fill runs on every L1 miss and every store, making
        it the hottest method in the cache model.
        """
        idx = (line_addr >> self._set_shift) & self._set_mask
        cset = self._sets.get(idx)
        if cset is None:
            cset = LRUSet(self._assoc)
            self._sets[idx] = cset
        by_tag = cset._by_tag
        order = cset._order
        existing = by_tag.get(line_addr)
        if existing is not None:
            if order[-1] != line_addr:  # cset.get's LRU touch
                order.remove(line_addr)
                order.append(line_addr)
            existing.spec = existing.spec or spec
            if spec:
                if subidx > existing.subidx:
                    existing.subidx = subidx
                self._spec_tags.add(line_addr)
                if notified:
                    existing.notified = True
                    self._notified_tags.add(line_addr)
            return None
        evicted = None
        if len(by_tag) >= self._assoc:
            victim_tag = order[0]  # true-LRU victim
            del order[0]
            evicted = by_tag.pop(victim_tag)
            self.resident.discard(victim_tag)
            if evicted.spec:
                self._spec_tags.discard(victim_tag)
                if evicted.notified:
                    self._notified_tags.discard(victim_tag)
        line = L1Line(tag=line_addr, spec=spec, notified=notified,
                      subidx=subidx if spec else -1)
        by_tag[line_addr] = line
        order.append(line_addr)
        self.resident.add(line_addr)
        if spec:
            self._spec_tags.add(line_addr)
            if notified:
                self._notified_tags.add(line_addr)
        return evicted

    def mark_spec(self, line_addr: int, notified: bool,
                  subidx: int = -1) -> None:
        line = self.lookup(line_addr, touch=False)
        if line is not None:
            line.spec = True
            line.subidx = max(line.subidx, subidx)
            self._spec_tags.add(line_addr)
            if notified:
                line.notified = True
                self._notified_tags.add(line_addr)

    def is_notified(self, line_addr: int) -> bool:
        return line_addr in self._notified_tags

    # ------------------------------------------------------------------
    # Invalidation (violations, epoch boundaries, L2 inclusion)
    # ------------------------------------------------------------------

    def invalidate(self, line_addr: int) -> bool:
        """Invalidate one line (L2 eviction inclusion, external store)."""
        if line_addr not in self.resident:
            return False
        removed = self._set_for(line_addr).remove(line_addr)
        if removed is None:
            return False
        self.resident.discard(line_addr)
        if removed.spec:
            self._spec_tags.discard(line_addr)
            if removed.notified:
                self._notified_tags.discard(line_addr)
        return True

    def flash_invalidate_spec(self, from_subidx: int = None) -> int:
        """Drop speculatively-accessed lines (violation recovery).

        With the paper's sub-thread-unaware L1s (``from_subidx=None``)
        every speculative line goes; with the optional per-sub-thread
        tracking only lines touched by sub-threads at or after the rewind
        point are dropped.  Returns the number of lines invalidated; the
        subsequent refetches from L2 are the recovery cost.
        """
        count = 0
        survivors: Optional[set] = None
        for tag in self._spec_tags:
            cset = self._set_for(tag)
            line = cset.peek(tag)
            if line is None or not line.spec:
                continue  # stale tag (defensive; the set is kept exact)
            if from_subidx is not None and line.subidx < from_subidx:
                if survivors is None:
                    survivors = set()
                survivors.add(tag)
                continue
            cset.remove(tag)
            self.resident.discard(tag)
            self._notified_tags.discard(tag)
            count += 1
        self._spec_tags = survivors if survivors is not None else set()
        self.spec_invalidations += count
        return count

    def clear_spec_marks(self) -> None:
        """New epoch begins: lines stay cached but lose speculative marks."""
        for tag in self._spec_tags:
            entry = self._set_for(tag).peek(tag)
            if entry is not None:
                entry.spec = False
                entry.notified = False
                entry.subidx = -1
        self._spec_tags.clear()
        self._notified_tags.clear()

    def check_mirrors(self) -> None:
        """Assert the tag-set mirrors match the per-line flags exactly."""
        spec = set()
        notified = set()
        resident = set()
        for cset in self._sets.values():
            for line in cset.entries():
                resident.add(line.tag)
                if line.spec:
                    spec.add(line.tag)
                if line.notified:
                    notified.add(line.tag)
        assert resident == self.resident, "L1 resident mirror diverged"
        assert spec == self._spec_tags, "L1 spec-tag mirror diverged"
        assert notified == self._notified_tags, (
            "L1 notified-tag mirror diverged"
        )

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------

    def resident_lines(self) -> List[L1Line]:
        out: List[L1Line] = []
        for cset in self._sets.values():
            out.extend(cset.entries())
        return out

    def spec_lines(self) -> List[L1Line]:
        return [l for l in self.resident_lines() if l.spec]
