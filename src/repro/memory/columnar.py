"""Columnar bulk resolution of compiled memory-access runs.

The compiled-dispatch inner loop (``Machine._run_region``) pays a fixed
per-record toll even for the cheapest possible memory access — an L1
load hit that the L2 was already notified about: cursor bookkeeping,
sub-thread checkpoint tests, the heap chain test, and the per-line tuple
walk.  At the measured event rates that toll is roughly half the cost of
the access.

This module removes it for the one access class where doing so is
provably invisible.  At compile time (:func:`build_block`, called from
``repro.trace.compile``) each maximal run of consecutive single-line
LOAD records is lowered into a *columnar block*: the per-record interned
``(line, sub_addr, word_mask, load_bits, private)`` tuples transposed
into parallel ``lines`` / ``word_masks`` columns (a numpy structured
array is attached for long runs when numpy is importable; the plain
tuples are the always-present pure-Python form, so numpy stays an
optional dependency).  At dispatch time (:func:`resolve_loads`) the
machine hands the block to one call that scans the run's *bulk-eligible
prefix* and applies its effects in one pass:

* a load is bulk-eligible when its line is **L1-resident** and — for a
  speculative epoch — the L1 line is already ``notified`` (the L2 holds
  the epoch's speculative-load bit) or the epoch's own earlier stores
  cover every loaded word (the load is not exposed).  Such a load
  touches *no* L2, TLS-engine, or bank state: its complete architectural
  effect is one L1 hit plus an LRU touch, both applied here in access
  order, so resolving ``m`` of them in bulk is byte-identical to ``m``
  interpreted steps;
* the first access that misses this test ends the prefix — misses,
  exposed loads, and everything needing the event-driven protocol
  (violation scans, version selection, victim-cache traffic) remain the
  *scalar residue*, dispatched by the reference path in
  ``sim/machine.py`` / ``memory/l2.py`` exactly as before.

Eligibility is tested against the caches' *columnar tag mirrors* — the
L1's ``resident`` / ``_notified_tags`` tag sets and (indirectly, by
keeping loads that would need it out of the bulk set) the L2's
per-line version index — which ``memory/l1.py`` / ``memory/l2.py``
maintain transactionally at every fill/evict/squash/commit, so a squash
landing between bulk batches always observes an exact mirror.

The caller bounds the scan (``max_n``) so that every access the bulk
pass commits would also have been admitted by the machine's chain
condition and sub-thread spacing gate; any prefix length within that
bound is sound, which is what lets the numpy pre-screen under-approximate
without a correctness obligation.

``REPRO_NO_NUMPY=1`` in the environment forces the pure-Python path even
when numpy is installed (CI uses it to prove the fallback).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

_np = None
if os.environ.get("REPRO_NO_NUMPY") != "1":
    try:  # pragma: no cover - exercised via the numpy-absent CI leg
        import numpy as _np
    except ImportError:
        _np = None

#: Attach a numpy structured array to blocks at least this long (the
#: per-call ufunc overhead needs a long run to amortize; measured
#: consecutive-load runs in the benchmark workloads are far shorter, so
#: the tuples path is the primary one even with numpy installed).
NUMPY_MIN_BLOCK = int(os.environ.get("REPRO_COLUMNAR_NUMPY_MIN", "64"))

#: A resolve call vectorizes its eligibility pre-screen only for spans
#: at least this long (same crossover reasoning as NUMPY_MIN_BLOCK).
NUMPY_MIN_SPAN = NUMPY_MIN_BLOCK

#: Columnar block: ``(lines, word_masks, structured-array-or-None)``.
#: The two tuples are parallel to the run's records.
Block = Tuple[tuple, tuple, object]


def numpy_enabled() -> bool:
    """True when blocks may carry numpy columns (import + env gate)."""
    return _np is not None


def build_block(line_tuples) -> Block:
    """Transpose a run of single-line access tuples into columns.

    ``line_tuples`` is the run's per-record interned ``(line, sub_addr,
    word_mask, load_bits, private)`` entries, one per record.  The
    returned block always carries the pure-Python parallel tuples; a
    numpy structured array (fields ``line`` / ``mask``) is attached for
    long runs when numpy is available, feeding the vectorized
    eligibility pre-screen in :func:`resolve_loads`.
    """
    lines = tuple(t[0] for t in line_tuples)
    masks = tuple(t[2] for t in line_tuples)
    arr = None
    if _np is not None and len(lines) >= NUMPY_MIN_BLOCK:
        try:
            arr = _np.array(
                list(zip(lines, masks)),
                dtype=[("line", "<u8"), ("mask", "<u8")],
            )
        except (OverflowError, ValueError):
            arr = None  # addresses/masks beyond uint64: tuples only
    return (lines, masks, arr)


def resolve_loads(
    block: Block,
    off: int,
    max_n: int,
    resident: set,
    notified: Optional[set],
    su: Optional[dict],
    l1_sets: dict,
    set_shift: int,
    set_mask: int,
) -> int:
    """Resolve the bulk-eligible prefix of a load run; returns its length.

    Scans ``block`` from ``off`` for at most ``max_n`` accesses and, for
    each eligible one *in access order*, applies its complete effect: an
    LRU touch of the line's L1 set.  (The caller applies the aggregate
    counters — L1 hits, instruction/cycle accounting — from the returned
    count.)  The scan stops at the first access that is not an eligible
    hit; that access and everything after it are left untouched for the
    scalar reference path.

    ``notified`` is the L1's ``_notified_tags`` mirror and ``su`` the
    epoch's store-mask union; both are None for non-speculative epochs,
    where residency alone makes a load eligible.
    """
    lines, wmasks, arr = block
    end = off + max_n
    i = off
    # Vectorized pre-screen for long spans: one pass computes the prefix
    # whose lines are eligible *independently of per-access masks*
    # (resident, and for speculative epochs already notified), so the
    # commit loop below can skip the per-access membership tests for it.
    # Lines eligible only through store-union coverage fall out of the
    # pre-screen and are picked up by the exact per-access tests — a
    # shorter prefix is merely less bulk, never an error.
    fast_until = off
    if arr is not None and max_n >= NUMPY_MIN_SPAN:
        seg = arr["line"][off:end]
        ok = [
            u for u in _np.unique(seg).tolist()
            if u in resident and (notified is None or u in notified)
        ]
        if ok:
            elig = _np.isin(
                seg, _np.fromiter(ok, dtype=seg.dtype, count=len(ok))
            )
            if elig.all():
                fast_until = end
            else:
                fast_until = off + int(_np.argmin(elig))
    while i < end:
        line = lines[i]
        if i >= fast_until:
            if line not in resident:
                break
            if su is not None and line not in notified:
                written = su.get(line)
                if written is None or (wmasks[i] & ~written):
                    break
        # l1.access hit, in order: refresh the set's LRU position.
        order_l = l1_sets[(line >> set_shift) & set_mask]._order
        if order_l[-1] != line:
            order_l.remove(line)
            order_l.append(line)
        i += 1
    return i - off
