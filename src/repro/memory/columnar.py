"""Columnar bulk resolution of compiled memory-access runs.

The compiled-dispatch inner loop (``Machine._run_region``) pays a fixed
per-record toll even for the cheapest possible memory access — an L1
load hit that the L2 was already notified about: cursor bookkeeping,
sub-thread checkpoint tests, the heap chain test, and the per-line tuple
walk.  At the measured event rates that toll is roughly half the cost of
the access.

This module removes it for the two access classes where doing so is
provably invisible.  At compile time (:func:`build_block`, called from
``repro.trace.compile``) each maximal run of consecutive single-line
LOAD records — and, separately, each run of consecutive single-line
*private* STORE records — is lowered into a *columnar block*: the
per-record interned ``(line, sub_addr, word_mask, load_bits, private)``
tuples transposed into parallel ``lines`` / ``word_masks`` columns (a
numpy structured array is attached for long runs when numpy is
importable; the plain tuples are the always-present pure-Python form,
so numpy stays an optional dependency).  At dispatch time
(:func:`resolve_loads` / :func:`resolve_stores`) the machine hands the
block to one call that scans the run's *bulk-eligible prefix* and
applies its effects in one pass:

* a load is bulk-eligible when its line is **L1-resident** and — for a
  speculative epoch — the L1 line is already ``notified`` (the L2 holds
  the epoch's speculative-load bit) or the epoch's own earlier stores
  cover every loaded word (the load is not exposed).  Such a load
  touches *no* L2, TLS-engine, or bank state: its complete architectural
  effect is one L1 hit plus an LRU touch, both applied here in access
  order, so resolving ``m`` of them in bulk is byte-identical to ``m``
  interpreted steps;
* a store is bulk-eligible when its line is **region-private** (the
  compiler only forms store runs from private lines, so a store can
  never raise a violation or wake a synchronized load), **resident in
  the storing CPU's L1 and no other L1** (no fill, no cross-L1
  invalidate walk), and the L2's per-line version index already holds
  a **non-victim version owned by the storing epoch** (speculative) or
  a committed version (non-speculative) — no install, no eviction, no
  overflow.  Such a store's complete architectural effect is the word-
  mask bookkeeping, an L2 hit with an MRU promote, one bank
  reservation, and an L1 LRU touch with speculative marking — all
  applied here in access order (:func:`resolve_stores`);
* the first access that misses these tests ends the prefix — misses,
  exposed loads, version installs, shared-line stores, and everything
  needing the event-driven protocol (violation scans, version
  selection, victim-cache traffic) remain the *scalar residue*,
  dispatched by the reference path in ``sim/machine.py`` /
  ``memory/l2.py`` exactly as before.

Eligibility is tested against the caches' *columnar tag mirrors* — the
L1's ``resident`` / ``_notified_tags`` tag sets and the L2's per-line
version index (``_line_versions``; loads use it indirectly by keeping
accesses that would need it out of the bulk set, stores scan it
directly for the epoch-owned version) — which ``memory/l1.py`` /
``memory/l2.py`` maintain transactionally at every
fill/evict/squash/commit, so a squash landing between bulk batches
always observes an exact mirror.

The caller bounds the scan (``max_n``) so that every access the bulk
pass commits would also have been admitted by the machine's chain
condition and sub-thread spacing gate; any prefix length within that
bound is sound, which is what lets the numpy pre-screen under-approximate
without a correctness obligation.

``REPRO_NO_NUMPY=1`` in the environment forces the pure-Python path even
when numpy is installed (CI uses it to prove the fallback).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

_np = None
if os.environ.get("REPRO_NO_NUMPY") != "1":
    try:  # pragma: no cover - exercised via the numpy-absent CI leg
        import numpy as _np
    except ImportError:
        _np = None

#: Attach a numpy structured array to blocks at least this long (the
#: per-call ufunc overhead needs a long run to amortize; measured
#: consecutive-load runs in the benchmark workloads are far shorter, so
#: the tuples path is the primary one even with numpy installed).
NUMPY_MIN_BLOCK = int(os.environ.get("REPRO_COLUMNAR_NUMPY_MIN", "64"))

#: A resolve call vectorizes its eligibility pre-screen only for spans
#: at least this long (same crossover reasoning as NUMPY_MIN_BLOCK).
NUMPY_MIN_SPAN = NUMPY_MIN_BLOCK

#: Columnar block: ``(lines, word_masks, structured-array-or-None)``.
#: The two tuples are parallel to the run's records.
Block = Tuple[tuple, tuple, object]


def numpy_enabled() -> bool:
    """True when blocks may carry numpy columns (import + env gate)."""
    return _np is not None


def build_block(line_tuples) -> Block:
    """Transpose a run of single-line access tuples into columns.

    ``line_tuples`` is the run's per-record interned ``(line, sub_addr,
    word_mask, load_bits, private)`` entries, one per record.  The
    returned block always carries the pure-Python parallel tuples; a
    numpy structured array (fields ``line`` / ``mask``) is attached for
    long runs when numpy is available, feeding the vectorized
    eligibility pre-screen in :func:`resolve_loads`.
    """
    lines = tuple(t[0] for t in line_tuples)
    masks = tuple(t[2] for t in line_tuples)
    arr = None
    if _np is not None and len(lines) >= NUMPY_MIN_BLOCK:
        try:
            arr = _np.array(
                list(zip(lines, masks)),
                dtype=[("line", "<u8"), ("mask", "<u8")],
            )
        except (OverflowError, ValueError):
            arr = None  # addresses/masks beyond uint64: tuples only
    return (lines, masks, arr)


def resolve_loads(
    block: Block,
    off: int,
    max_n: int,
    resident: set,
    notified: Optional[set],
    su: Optional[dict],
    l1_sets: dict,
    set_shift: int,
    set_mask: int,
) -> int:
    """Resolve the bulk-eligible prefix of a load run; returns its length.

    Scans ``block`` from ``off`` for at most ``max_n`` accesses and, for
    each eligible one *in access order*, applies its complete effect: an
    LRU touch of the line's L1 set.  (The caller applies the aggregate
    counters — L1 hits, instruction/cycle accounting — from the returned
    count.)  The scan stops at the first access that is not an eligible
    hit; that access and everything after it are left untouched for the
    scalar reference path.

    ``notified`` is the L1's ``_notified_tags`` mirror and ``su`` the
    epoch's store-mask union; both are None for non-speculative epochs,
    where residency alone makes a load eligible.
    """
    lines, wmasks, arr = block
    end = off + max_n
    i = off
    # Vectorized pre-screen for long spans: one pass computes the prefix
    # whose lines are eligible *independently of per-access masks*
    # (resident, and for speculative epochs already notified), so the
    # commit loop below can skip the per-access membership tests for it.
    # Lines eligible only through store-union coverage fall out of the
    # pre-screen and are picked up by the exact per-access tests — a
    # shorter prefix is merely less bulk, never an error.
    fast_until = off
    if arr is not None and max_n >= NUMPY_MIN_SPAN:
        seg = arr["line"][off:end]
        ok = [
            u for u in _np.unique(seg).tolist()
            if u in resident and (notified is None or u in notified)
        ]
        if ok:
            elig = _np.isin(
                seg, _np.fromiter(ok, dtype=seg.dtype, count=len(ok))
            )
            if elig.all():
                fast_until = end
            else:
                fast_until = off + int(_np.argmin(elig))
    while i < end:
        line = lines[i]
        if i >= fast_until:
            if line not in resident:
                break
            if su is not None and line not in notified:
                written = su.get(line)
                if written is None or (wmasks[i] & ~written):
                    break
        # l1.access hit, in order: refresh the set's LRU position.
        order_l = l1_sets[(line >> set_shift) & set_mask]._order
        if order_l[-1] != line:
            order_l.remove(line)
            order_l.append(line)
        i += 1
    return i - off


def _store_target(line_versions: dict, line: int, want: int):
    """The L2 version a bulk store would hit, or None (ineligible).

    Mirrors ``SpeculativeL2.store_line``'s version-index scan: the entry
    owned by ``want`` (the storing epoch's order, or COMMITTED for
    non-speculative epochs).  A victim-cache resident target is treated
    as ineligible — promoting it back into the set can evict, which is
    event-protocol work the bulk pass must not do.
    """
    versions = line_versions.get(line)
    if not versions:
        return None
    for entry in versions:
        if entry.owner == want:
            if entry.in_victim:
                return None
            return entry
    return None


def resolve_stores(
    block: Block,
    off: int,
    max_n: int,
    resident: set,
    other_resident: tuple,
    line_versions: dict,
    want: int,
    l2_sets: dict,
    l2_set_shift: int,
    l2_set_mask: int,
    l1_sets: dict,
    set_shift: int,
    set_mask: int,
    sm: Optional[dict],
    su: Optional[dict],
    ctx: Optional[int],
    subidx: int,
    ctx_lines: Optional[dict],
    spec_tags: Optional[set],
    banks_reserve,
    now: float,
) -> int:
    """Resolve the bulk-eligible prefix of a store run; returns its length.

    Scans ``block`` from ``off`` for at most ``max_n`` accesses and, for
    each eligible one *in access order*, applies its complete
    architectural effect, byte-identical to the scalar chained-dispatch
    store arm it replaces (every line here is region-private, so the
    violation scan, the synchronized-load wakeup, and the cross-L1
    invalidate walk are all provably no-ops for eligible accesses):

    * the sub-thread store mask and the epoch store-mask union OR in the
      access's word mask (speculative epochs only);
    * the L2 hit's MRU promote of the epoch-owned version, plus the
      version's ``spec_mod`` mask (speculative) or dirty bit
      (non-speculative) — ``store_line``'s hit path with the ``hits``
      counter applied in aggregate by the caller;
    * one bank reservation per store at its own cycle (write-through
      stores reserve bandwidth without waiting: store *k* of the prefix
      issues at ``now + k``);
    * the storing CPU's L1 LRU touch and, for speculative epochs, the
      line's speculative marking (``spec`` flag, sub-thread index
      high-water mark, ``_spec_tags`` mirror).

    The first access whose line is not resident in the storing L1, is
    resident in another CPU's L1, or has no in-set version owned by
    ``want`` ends the prefix; that access and everything after it are
    left for the scalar reference path.  The caller applies the
    aggregate counters (L2 hits, instruction/cycle accounting,
    private-store tally) from the returned count.

    ``sm``/``su``/``ctx``/``spec_tags`` are None (and ``subidx`` -1)
    for non-speculative epochs, where ``want`` is the committed owner.
    """
    lines, wmasks, arr = block
    end = off + max_n
    i = off
    # Vectorized pre-screen for long spans, mirroring resolve_loads: one
    # pass finds the prefix whose lines pass every per-line eligibility
    # test (the tests are mask-independent, so unlike loads the
    # pre-screen here is exact, not an under-approximation — but a
    # shorter prefix would still merely mean less bulk, never an error).
    fast_until = off
    if arr is not None and max_n >= NUMPY_MIN_SPAN:
        seg = arr["line"][off:end]
        ok = []
        for u in _np.unique(seg).tolist():
            if u not in resident:
                continue
            if any(u in other for other in other_resident):
                continue
            if _store_target(line_versions, u, want) is None:
                continue
            ok.append(u)
        if ok:
            elig = _np.isin(
                seg, _np.fromiter(ok, dtype=seg.dtype, count=len(ok))
            )
            if elig.all():
                fast_until = end
            else:
                fast_until = off + int(_np.argmin(elig))
    # Per-line targets resolved once per call: nothing a bulk store does
    # changes any eligibility input (LRU touches keep residency, the MRU
    # promote keeps the version in-set), so a line eligible once stays
    # eligible for every repeat store in the same prefix.
    targets: dict = {}
    ctx_set = None
    while i < end:
        line = lines[i]
        target = targets.get(line)
        if target is None:
            if i >= fast_until:
                if line not in resident:
                    break
                blocked = False
                for other in other_resident:
                    if line in other:
                        blocked = True
                        break
                if blocked:
                    break
            target = _store_target(line_versions, line, want)
            if target is None:
                break
            targets[line] = target
        words = wmasks[i]
        if sm is not None:
            sm[line] = sm.get(line, 0) | words
            su[line] = su.get(line, 0) | words
        # store_line's in-set MRU promote, inlined (in_victim targets
        # are excluded by eligibility).
        sentries = l2_sets[
            (line >> l2_set_shift) & l2_set_mask
        ]._entries
        if sentries[-1] is not target:
            for si, se in enumerate(sentries):
                if se is target:
                    del sentries[si]
                    break
            sentries.append(target)
        if ctx is None:
            target.dirty = True
        else:
            target.spec_mod[ctx] = target.spec_mod.get(ctx, 0) | words
            # _note_ctx_line, inlined; the per-ctx set is resolved once.
            if ctx_set is None:
                ctx_set = ctx_lines.get(ctx)
                if ctx_set is None:
                    ctx_lines[ctx] = ctx_set = set()
            ctx_set.add(line)
        # Write-through bandwidth: store k of the prefix issues at its
        # own cycle now + k, exactly as the scalar path's per-record
        # reservations would.
        banks_reserve(line, now + (i - off))
        # l1.fill on a resident line, inlined: LRU touch plus
        # speculative marking.
        cset = l1_sets[(line >> set_shift) & set_mask]
        order_l = cset._order
        if order_l[-1] != line:
            order_l.remove(line)
            order_l.append(line)
        if ctx is not None:
            lobj = cset._by_tag[line]
            lobj.spec = True
            if subidx > lobj.subidx:
                lobj.subidx = subidx
            spec_tags.add(line)
        i += 1
    return i - off
