"""Memory-hierarchy substrate: caches, speculative L2, victim cache, timing.

The structures here implement Section 2 of the paper: write-through L1
data caches with speculative-line marks, a shared L2 that buffers
speculative state for every in-flight sub-thread context (line-granularity
load bits, word-granularity mod bits, multi-version sets), a 64-entry
speculative victim cache, and banked-crossbar / memory-bandwidth timing.
"""

from .cache import CacheGeometry, LRUSet, SimpleCache
from .l1 import L1Cache, L1Line
from .l2 import (
    COMMITTED,
    AccessResult,
    ContextDirectory,
    L2Entry,
    SpeculativeL2,
    Violation,
)
from .timing import BankedResource, MemoryChannel, MemorySystemTiming
from .victim import VictimCache

__all__ = [
    "CacheGeometry",
    "LRUSet",
    "SimpleCache",
    "L1Cache",
    "L1Line",
    "COMMITTED",
    "AccessResult",
    "ContextDirectory",
    "L2Entry",
    "SpeculativeL2",
    "Violation",
    "BankedResource",
    "MemoryChannel",
    "MemorySystemTiming",
    "VictimCache",
]
