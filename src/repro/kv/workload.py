"""A key-value (YCSB-style) workload on minidb.

Section 1.3 of the paper: "We believe that the proposed hardware can be
used to support large and dependent speculative threads in other
application domains as well, expanding the scope for TLS."  This package
tests that claim on a second domain: a key-value store servicing
read/update/insert/scan request batches with a Zipf-skewed key
popularity, the standard YCSB shape.

The TLS decomposition mirrors the database work: a client *request
batch* is the transaction; chunks of operations become speculative
threads.  Under skew, concurrent epochs collide on the hot keys (and on
the B-tree leaves that hold them) — large speculative threads with
frequent unpredictable dependences, exactly the regime sub-threads
target.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..minidb import Database, EngineOptions, KeyNotFound
from ..trace import (
    TraceRecorder,
    TransactionTraceBuilder,
    WorkloadTrace,
    default_costs,
)


@dataclass(frozen=True)
class KVSpec:
    """Workload shape parameters (YCSB-style)."""

    n_keys: int = 400
    #: Operations per request batch (= per transaction).
    ops_per_batch: int = 48
    #: Operations per speculative thread.
    ops_per_epoch: int = 6
    #: Operation mix (fractions; the remainder is reads).
    update_fraction: float = 0.4
    insert_fraction: float = 0.05
    scan_fraction: float = 0.05
    #: Zipf exponent for key popularity (0 = uniform; ~0.99 = YCSB
    #: default; higher = hotter hot keys, more cross-epoch dependences).
    zipf_theta: float = 0.99
    #: Short range scans touch this many keys.
    scan_length: int = 8

    def __post_init__(self):
        total = (
            self.update_fraction + self.insert_fraction
            + self.scan_fraction
        )
        if total > 1.0:
            raise ValueError("operation fractions exceed 1.0")


#: YCSB core-workload presets (operation mixes; all use the default
#: Zipf skew of 0.99 as YCSB does).
def ycsb_preset(name: str) -> KVSpec:
    """KVSpec for a YCSB core workload: A (update-heavy), B (read-
    mostly), C (read-only), D (read-latest-ish: read-mostly with
    inserts), or E (short scans with inserts)."""
    presets = {
        "A": dict(update_fraction=0.5, insert_fraction=0.0,
                  scan_fraction=0.0),
        "B": dict(update_fraction=0.05, insert_fraction=0.0,
                  scan_fraction=0.0),
        "C": dict(update_fraction=0.0, insert_fraction=0.0,
                  scan_fraction=0.0),
        "D": dict(update_fraction=0.0, insert_fraction=0.05,
                  scan_fraction=0.0),
        "E": dict(update_fraction=0.0, insert_fraction=0.05,
                  scan_fraction=0.95),
    }
    key = name.upper()
    if key not in presets:
        raise ValueError(
            f"unknown YCSB preset {name!r}; choose from A-E"
        )
    return KVSpec(**presets[key])


class ZipfSampler:
    """Zipf-distributed ranks via an inverse-CDF table (seeded)."""

    def __init__(self, n: int, theta: float, rng: random.Random):
        if n < 1:
            raise ValueError("need at least one key")
        self.rng = rng
        weights = [1.0 / (rank ** theta) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        self._cdf = cdf

    def sample(self) -> int:
        """A 0-based rank; rank 0 is the hottest."""
        return bisect.bisect_left(self._cdf, self.rng.random())


@dataclass
class GeneratedKVWorkload:
    trace: WorkloadTrace
    db: Database
    recorder: TraceRecorder
    spec: KVSpec
    operations: int = 0


def generate_kv_workload(
    spec: Optional[KVSpec] = None,
    tls_mode: bool = True,
    options: Optional[EngineOptions] = None,
    n_batches: int = 4,
    seed: int = 42,
    n_cpus: int = 4,
) -> GeneratedKVWorkload:
    """Build the trace for ``n_batches`` request batches.

    Same conventions as the TPC-C driver: ``tls_mode=False`` gives the
    unmodified sequential program; TLS mode defaults to the optimized
    engine.
    """
    spec = spec or KVSpec()
    if options is None:
        options = (
            EngineOptions.optimized() if tls_mode
            else EngineOptions.unoptimized()
        )
    rng = random.Random(seed)
    recorder = TraceRecorder(costs=default_costs())
    recorder.scratch_arenas = max(1, n_cpus)
    db = Database(recorder=recorder, options=options)
    table = db.create_table("kv", entry_size=64)
    # Load phase (untraced): keys are spread so ranks map to scattered
    # B-tree positions, as a hashed key space would.
    recorder.set_target(None)
    positions = list(range(spec.n_keys))
    rng.shuffle(positions)
    for rank, pos in enumerate(positions):
        table.insert((pos,), {"rank": rank, "value": rank, "version": 0})
    rank_to_key = {rank: (pos,) for rank, pos in enumerate(positions)}
    sampler = ZipfSampler(spec.n_keys, spec.zipf_theta, rng)

    workload = WorkloadTrace(name=f"kv-theta{spec.zipf_theta}")
    result = GeneratedKVWorkload(
        trace=workload, db=db, recorder=recorder, spec=spec
    )
    next_insert_key = spec.n_keys + 1_000_000
    costs = recorder.costs

    for batch_idx in range(n_batches):
        builder = TransactionTraceBuilder(
            f"kv[{batch_idx}]", recorder, tls_mode=tls_mode
        )
        builder.begin_serial()
        txn = db.begin()
        recorder.compute(costs.app_work)
        ops = []
        for _ in range(spec.ops_per_batch):
            draw = rng.random()
            if draw < spec.update_fraction:
                ops.append(("update", sampler.sample()))
            elif draw < spec.update_fraction + spec.insert_fraction:
                ops.append(("insert", None))
            elif draw < (
                spec.update_fraction + spec.insert_fraction
                + spec.scan_fraction
            ):
                ops.append(("scan", sampler.sample()))
            else:
                ops.append(("read", sampler.sample()))
        builder.begin_parallel()
        for lo in range(0, len(ops), spec.ops_per_epoch):
            builder.begin_epoch()
            recorder.compute(costs.app_work)
            for op, rank in ops[lo:lo + spec.ops_per_epoch]:
                result.operations += 1
                if op == "read":
                    try:
                        table.get(rank_to_key[rank])
                    except KeyNotFound:
                        pass
                elif op == "update":
                    key = rank_to_key[rank]

                    def bump(row):
                        row["version"] += 1
                        return row

                    table.read_modify_write(key, bump)
                    txn.log("kv.update", key)
                elif op == "insert":
                    key = (next_insert_key,)
                    next_insert_key += 1
                    table.insert(key, {"rank": -1, "value": 0,
                                       "version": 0})
                    txn.log("kv.insert", key)
                else:  # scan
                    start = rank_to_key[rank]
                    for _k, _v in table.scan_range(
                        start, limit=spec.scan_length
                    ):
                        recorder.compute(costs.key_compare)
                recorder.store(
                    recorder.scratch_addr(0x600), 8, "kv.batch_result"
                )
        builder.end_parallel()
        builder.begin_serial()
        txn.commit()
        db.commit_epilogue()
        workload.transactions.append(builder.finish())
    return result
