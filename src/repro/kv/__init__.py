"""Key-value (YCSB-style) workload — TLS beyond TPC-C (paper §1.3)."""

from .workload import (
    GeneratedKVWorkload,
    KVSpec,
    ZipfSampler,
    generate_kv_workload,
    ycsb_preset,
)

__all__ = [
    "GeneratedKVWorkload",
    "KVSpec",
    "ZipfSampler",
    "generate_kv_workload",
    "ycsb_preset",
]
