"""Benchmark E2 — regenerates Figure 6 (sub-thread count x spacing).

One bench per Figure 6 panel; ``extra_info`` carries the grid of
normalized execution times the paper plots.
"""

import pytest

from conftest import run_once
from repro.harness import run_figure6
from repro.harness.figure6 import FIGURE6_BENCHMARKS, SPACINGS, SUBTHREAD_COUNTS


@pytest.mark.parametrize("bench_name", FIGURE6_BENCHMARKS)
def test_figure6_panel(benchmark, ctx, bench_name):
    result = run_once(
        benchmark,
        run_figure6,
        ctx,
        benchmarks=(bench_name,),
        counts=SUBTHREAD_COUNTS,
        spacings=SPACINGS,
    )
    grid = {
        f"{c.subthreads}st@{c.spacing}": round(c.normalized, 3)
        for c in result.cells
    }
    benchmark.extra_info["grid"] = grid
    # Paper shape: more sub-thread contexts never hurt materially
    # ("adding more sub-threads does not ... have a negative impact").
    for spacing in SPACINGS:
        two = result.cell(bench_name, 2, spacing).normalized
        eight = result.cell(bench_name, 8, spacing).normalized
        assert eight <= two * 1.05
    print()
    print(result.render())


def test_figure6_paper_size(benchmark):
    """Figure 6 at paper-sized (~50k-instruction) threads."""
    from repro.harness import run_figure6_paper_size

    result = run_once(benchmark, run_figure6_paper_size)
    benchmark.extra_info["grid"] = {
        f"{c.subthreads}st@{c.spacing}": round(c.normalized, 3)
        for c in result.cells
    }
    best = result.best_cell("new_order")
    assert best.spacing >= 1000  # small spacings under-cover 50k threads
    print()
    print(result.render())
