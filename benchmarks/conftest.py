"""Shared fixtures for the benchmark harness.

Traces are generated once per session so the benchmarks measure
*simulation*, not trace generation (mirroring the paper's setup where
binaries are fixed and the simulator is the object of study).
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    """Default-scale context, small transaction count for bench runtime."""
    return ExperimentContext(n_transactions=2)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight experiment once per round (3 rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=3, iterations=1, warmup_rounds=0)
