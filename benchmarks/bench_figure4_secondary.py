"""Benchmark E6 — regenerates the Figure 4 secondary-violation study."""

from conftest import run_once
from repro.harness import run_figure4


def test_figure4_start_tables(benchmark):
    result = run_once(benchmark, run_figure4)
    benchmark.extra_info["with_tables_failed"] = round(
        result.with_tables_failed
    )
    benchmark.extra_info["without_tables_failed"] = round(
        result.without_tables_failed
    )
    # Figure 4(b): start tables restart strictly less work.
    assert result.failed_cycles_saved > 0
    assert result.with_tables_cycles <= result.without_tables_cycles
    print()
    print(result.render())
