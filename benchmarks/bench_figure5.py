"""Benchmark E1 — regenerates Figure 5 (one bench per paper benchmark).

Each bench simulates one TPC-C benchmark under all five execution modes
and reports the normalized bars; ``extra_info`` carries the series the
paper plots (normalized execution time per mode).

Run with ``pytest benchmarks/bench_figure5.py --benchmark-only -s`` to
see the rendered bars.
"""

import pytest

from conftest import run_once
from repro.harness import run_figure5
from repro.sim import ExecutionMode
from repro.tpcc import BENCHMARKS


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
def test_figure5_benchmark(benchmark, ctx, bench_name):
    result = run_once(benchmark, run_figure5, ctx,
                      benchmarks=[bench_name])
    bars = {b.mode: b.normalized for b in result.bars}
    benchmark.extra_info["normalized_time"] = bars
    benchmark.extra_info["speedup_baseline"] = result.speedup(
        bench_name, ExecutionMode.BASELINE
    )
    # Paper shape: sub-thread TLS never loses to all-or-nothing.
    assert bars[ExecutionMode.BASELINE] <= (
        bars[ExecutionMode.NO_SUBTHREAD] * 1.02
    )
    print()
    print(result.render())
