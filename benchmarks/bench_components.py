"""Component microbenchmarks: simulator building-block throughput.

Not a paper artifact; these quantify the substrate itself (useful when
tuning the pure-Python simulator) and guard against performance
regressions in the hot paths.
"""

import pytest

from repro.core.engine import TLSConfig, TLSEngine
from repro.memory.cache import CacheGeometry
from repro.memory.l2 import SpeculativeL2
from repro.minidb import Database
from repro.sim import ExecutionMode, Machine, MachineConfig
from repro.tpcc import TPCCScale, generate_workload


def test_bench_l2_store_load_throughput(benchmark):
    geom = CacheGeometry(size_bytes=256 * 1024, assoc=4, line_size=32)

    def setup():
        l2 = SpeculativeL2(geom, directory=None)
        engine = TLSEngine(l2, n_cpus=4, config=TLSConfig())
        l2.directory = engine
        epochs = [
            engine.start_epoch(
                __import__("repro.trace.events", fromlist=["EpochTrace"])
                .EpochTrace(epoch_id=i, records=[]),
                cpu=i,
                now=0.0,
            )
            for i in range(4)
        ]
        return (engine, epochs), {}

    def work(engine, epochs):
        for i in range(500):
            e = epochs[i % 4]
            engine.load(e, 0x1000 + 32 * (i % 64), 4, pc=1)
            engine.store(e, 0x9000 + 32 * (i % 64), 4, pc=2)

    benchmark.pedantic(work, setup=setup, rounds=5, iterations=1)


def test_bench_btree_insert_throughput(benchmark):
    def setup():
        db = Database()
        return (db.create_table("t"),), {}

    def work(tree):
        for i in range(1000):
            tree.insert((i,), i)

    benchmark.pedantic(work, setup=setup, rounds=5, iterations=1)


def test_bench_trace_generation(benchmark):
    benchmark.pedantic(
        generate_workload,
        args=("new_order",),
        kwargs={"n_transactions": 1, "scale": TPCCScale.tiny()},
        rounds=5,
        iterations=1,
    )


def test_bench_simulation_rate(benchmark):
    gw = generate_workload("new_order", n_transactions=2)

    def work():
        return Machine(
            MachineConfig.for_mode(ExecutionMode.BASELINE)
        ).run(gw.trace)

    stats = benchmark.pedantic(work, rounds=3, iterations=1)
    benchmark.extra_info["instructions"] = stats.instructions_retired
