"""Benchmark E5 — regenerates the Figure 2 tuning experiment.

Iterative dependence removal on NEW ORDER: each step removes one
dependence source from the engine; with sub-threads the trend is
steadily downward, while all-or-nothing TLS improves erratically.
"""

from conftest import run_once
from repro.harness import run_figure2


def test_figure2_tuning(benchmark):
    result = run_once(benchmark, run_figure2, n_transactions=2)
    benchmark.extra_info["steps"] = {
        s.label: {
            "all_or_nothing": round(s.all_or_nothing_cycles),
            "subthreads": round(s.subthread_cycles),
        }
        for s in result.steps
    }
    # Fully tuned beats untuned under sub-thread TLS.
    assert (
        result.steps[-1].subthread_cycles
        < result.steps[0].subthread_cycles
    )
    # Most steps help (Figure 2(b)'s gradual-improvement claim).
    assert result.subthread_monotone_fraction() >= 0.5
    print()
    print(result.render())
