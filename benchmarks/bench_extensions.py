"""Extension benches: prediction policies (E8) and L1 tracking (A4)."""

from conftest import run_once
from repro.harness import run_l1_tracking_ablation, run_prediction_comparison


def test_extension_prediction_comparison(benchmark, ctx):
    result = run_once(benchmark, run_prediction_comparison, ctx)
    benchmark.extra_info["speedups"] = {
        p.label: round(p.speedup, 2) for p in result.points
    }
    sync = result.point("all-or-nothing + sync predictor")
    plain = result.point("all-or-nothing")
    subthreads = result.point("sub-threads (periodic, paper)")
    # The paper's §1.2 finding: synchronization collapses violations but
    # over-synchronizes; sub-threads remain the better mechanism.
    assert sync.violations < plain.violations
    assert sync.sync_fraction > plain.sync_fraction
    assert subthreads.speedup >= sync.speedup
    print()
    print(result.render())


def test_extension_l1_tracking(benchmark, ctx):
    result = run_once(benchmark, run_l1_tracking_ablation, ctx)
    unaware, tracking = result.points
    benchmark.extra_info["cycles"] = {
        str(p.value): round(p.cycles) for p in result.points
    }
    # The paper's §2.2 claim: per-sub-thread L1 tracking is not
    # worthwhile — it saves some invalidations but barely moves runtime.
    assert tracking.extra["l1_spec_invalidations"] <= unaware.extra[
        "l1_spec_invalidations"
    ]
    assert tracking.cycles >= unaware.cycles * 0.90
    print()
    print(result.render())


def test_extension_scalability(benchmark, ctx):
    from repro.harness import run_scalability

    result = run_once(benchmark, run_scalability, ctx,
                      cpu_counts=(1, 2, 4, 8))
    benchmark.extra_info["subthread_speedups"] = {
        p.n_cpus: round(p.baseline_speedup, 2) for p in result.points
    }
    benchmark.extra_info["all_or_nothing_speedups"] = {
        p.n_cpus: round(p.all_or_nothing_speedup, 2)
        for p in result.points
    }
    # Sub-thread TLS keeps improving (or holds) with width; the
    # all-or-nothing curve must not beat it anywhere.
    for p in result.points:
        assert p.baseline_speedup >= p.all_or_nothing_speedup * 0.98
    assert result.point(8).baseline_speedup >= (
        result.point(2).baseline_speedup
    )
    print()
    print(result.render())


def test_extension_when_to_use(benchmark, ctx):
    from repro.harness import run_when_to_use

    result = run_once(benchmark, run_when_to_use, ctx)
    benchmark.extra_info["outcomes"] = {
        f"{o.policy}@{o.load_label}": round(o.mean_latency)
        for o in result.outcomes
    }
    low_tls = result.outcome("always-tls", "low (idle CPUs)")
    low_never = result.outcome("never-tls", "low (idle CPUs)")
    hi_tls = result.outcome("always-tls", "high (saturated)")
    hi_never = result.outcome("never-tls", "high (saturated)")
    assert low_tls.mean_latency <= low_never.mean_latency
    assert hi_never.makespan <= hi_tls.makespan
    print()
    print(result.render())


def test_extension_kv_study(benchmark):
    from repro.harness import run_kv_study

    result = run_once(benchmark, run_kv_study)
    benchmark.extra_info["speedups"] = {
        p.zipf_theta: {
            "all_or_nothing": round(p.no_subthread_speedup, 2),
            "subthreads": round(p.baseline_speedup, 2),
        }
        for p in result.points
    }
    for p in result.points:
        assert p.baseline_speedup >= p.no_subthread_speedup * 0.97
    # Skew hurts all-or-nothing at least as much as sub-threads.
    uniform, hot = result.points[0], result.points[-1]
    aon_loss = 1 - hot.no_subthread_speedup / uniform.no_subthread_speedup
    sub_loss = 1 - hot.baseline_speedup / uniform.baseline_speedup
    assert aon_loss >= sub_loss - 0.03
    print()
    print(result.render())


def test_extension_mix_latency(benchmark):
    from repro.harness import run_mix_latency

    result = run_once(benchmark, run_mix_latency, n_transactions=16)
    benchmark.extra_info["per_type_speedup"] = {
        r.txn_type: round(r.speedup, 2) for r in result.rows
    }
    benchmark.extra_info["overall"] = round(result.overall_speedup(), 2)
    payment = result.row("payment")
    new_order = result.row("new_order")
    assert payment.speedup < new_order.speedup
    assert result.overall_speedup() > 1.2
    print()
    print(result.render())
