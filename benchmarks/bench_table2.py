"""Benchmark E4 — regenerates Table 2 (benchmark statistics)."""

from conftest import run_once
from repro.harness import run_table2


def test_table2(benchmark, ctx):
    result = run_once(benchmark, run_table2, ctx)
    benchmark.extra_info["rows"] = {
        r.benchmark: {
            "coverage": round(r.coverage, 3),
            "thread_size": round(r.avg_thread_size),
            "threads_per_txn": round(r.threads_per_transaction, 1),
        }
        for r in result.rows
    }
    # Paper shape: NEW ORDER 150 multiplies the thread count ~10x, and
    # DELIVERY OUTER's threads are the largest.
    assert result.row("new_order_150").threads_per_transaction > (
        5 * result.row("new_order").threads_per_transaction
    )
    largest = max(result.rows, key=lambda r: r.avg_thread_size)
    assert largest.benchmark == "delivery_outer"
    print()
    print(result.render())
