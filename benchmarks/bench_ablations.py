"""Ablation benches A1-A3 (victim cache, start cost, load granularity)."""

from conftest import run_once
from repro.harness import (
    run_load_granularity_ablation,
    run_start_cost_ablation,
    run_victim_cache_ablation,
)


def test_ablation_victim_cache(benchmark, ctx):
    result = run_once(benchmark, run_victim_cache_ablation, ctx)
    cycles = {p.value: p.cycles for p in result.points}
    benchmark.extra_info["cycles_by_size"] = cycles
    # Footnote 1: a 64-entry victim cache suffices — growing it further
    # buys nothing, while removing it entirely costs overflow squashes.
    assert cycles[256] >= cycles[64] * 0.99
    assert result.points[0].extra["overflow_squashes"] >= (
        result.points[-1].extra["overflow_squashes"]
    )
    print()
    print(result.render())


def test_ablation_start_cost(benchmark, ctx):
    result = run_once(benchmark, run_start_cost_ablation, ctx)
    benchmark.extra_info["cycles_by_cost"] = {
        p.value: p.cycles for p in result.points
    }
    # Checkpoints must be lightweight: a 1000-cycle checkpoint visibly
    # hurts relative to the paper's zero-cost model.
    assert result.points[-1].cycles > result.points[0].cycles
    print()
    print(result.render())


def test_ablation_load_granularity(benchmark, ctx):
    result = run_once(benchmark, run_load_granularity_ablation, ctx)
    line, word = result.points
    benchmark.extra_info["line_violations"] = line.extra["violations"]
    benchmark.extra_info["word_violations"] = word.extra["violations"]
    # Word granularity can only remove (false-sharing) violations.
    assert word.extra["violations"] <= line.extra["violations"]
    print()
    print(result.render())


def test_ablation_adaptive_spacing(benchmark, ctx):
    from repro.harness import run_adaptive_spacing_ablation

    result = run_once(benchmark, run_adaptive_spacing_ablation, ctx)
    gains = {
        str(p.value): p.extra["adaptive_gain"] for p in result.points
    }
    benchmark.extra_info["adaptive_gain"] = gains
    # Section 5.1's suggestion should never lose badly, and should win
    # for the large-thread benchmark whose size the fixed spacing
    # under-covers.
    assert all(g > 0.93 for g in gains.values())
    assert gains["delivery_outer"] >= 1.0
    print()
    print(result.render())
