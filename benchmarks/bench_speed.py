"""Wall-clock speed benchmark for the experiment harness.

Times three things and writes them to ``results/perf.json`` so the
performance trajectory is tracked across PRs:

1. **Serial harness time** — Figure 5 + Figure 6 with ``jobs=1``.
2. **Parallel harness time** — the same sweep with ``--jobs N``
   (default: all CPUs), which must produce bit-identical results.
3. **Inner-loop throughput** — trace records simulated per second by a
   single ``Machine.run`` on a pre-generated TLS workload.
4. **Speculative scenario** — the same workload under the Figure-5
   TLS sub-thread (baseline) mode, timed five ways: journaled
   speculative batches with both columnar kernels on (the default),
   the store kernel off, both columnar kernels off, batching
   restricted to non-speculative epochs (``speculative_batches=
   False``), and fully interpreted (``compile_traces=False``).  The
   variants are interleaved per repetition so thermal/frequency drift
   cannot skew the ratios.  All throughputs land in the trajectory
   entry; ``--spec-min-vs-interpreted`` turns the compiled-vs-
   interpreted ratio into a CI gate.
5. **Compiled engine** — the inner-loop workload under the AOT-
   compiled event loop vs the pure-Python reference, interleaved via
   the ``REPRO_NO_COMPILED_ENGINE`` kill switch.  Skipped (and
   recorded as such) when no ``[speed]`` build is importable;
   ``--compiled-min-ratio`` turns the compiled-vs-pure ratio into a
   CI gate.

Every timed scenario reports best-of-N (the headline and gate input)
plus the median and records/second stdev of the repetitions, and
``--json`` echoes the whole perf document to stdout.  Trajectory
appends are linted against the ``repro.obs.schema`` bench-trajectory
schema before the script exits.

Unlike the pytest-benchmark files next to it this is a plain script
(it writes an artifact, not a benchmark table):

    PYTHONPATH=src python benchmarks/bench_speed.py --tiny

Traces are pre-generated (and the in-memory memo shared) before the
timed harness runs so both configurations measure simulation fan-out,
not workload generation.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import platform
import statistics
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.harness import ExperimentContext, JobRunner  # noqa: E402
from repro.harness.export import result_to_dict  # noqa: E402
from repro.obs import (  # noqa: E402
    atomic_write_json,
    build_manifest,
    finish_manifest,
    lint_bench_trajectory,
)
from repro.harness.figure5 import run_figure5  # noqa: E402
from repro.harness.figure6 import run_figure6  # noqa: E402
from repro.harness.tracecache import TraceSpec, materialize, spec_key  # noqa: E402
from repro.sim import ExecutionMode, Machine, MachineConfig, engine_kind  # noqa: E402
from repro.sim.engine import KILL_SWITCH  # noqa: E402
from repro.tpcc import TPCCScale  # noqa: E402
from repro.trace.events import (  # noqa: E402
    ParallelRegion,
    SerialSegment,
    WorkloadTrace,
)


def count_records(trace: WorkloadTrace) -> int:
    total = 0
    for txn in trace.transactions:
        for segment in txn.segments:
            if isinstance(segment, SerialSegment):
                total += len(segment.records)
            elif isinstance(segment, ParallelRegion):
                total += sum(len(e.records) for e in segment.epochs)
    return total


def make_context(args, jobs: int) -> ExperimentContext:
    scale = TPCCScale.tiny() if args.tiny else None
    runner = JobRunner(jobs=jobs, trace_cache=None)
    return ExperimentContext(
        n_transactions=args.transactions, seed=args.seed, scale=scale,
        runner=runner,
    )


def run_sweep(ctx: ExperimentContext):
    return run_figure5(ctx), run_figure6(ctx)


def time_harness(args, jobs: int, spec_keys: set):
    """Time figure5+figure6 once with the given fan-out.

    Every trace the runner materializes is recorded into ``spec_keys``
    so the manifest's ``trace_spec_keys`` provenance survives the bench
    bypassing the harness CLI.
    """
    ctx = make_context(args, jobs)
    # Warm the trace memo outside the timed region: both the serial and
    # the parallel configuration then measure pure simulation time.
    run_sweep(ctx)
    t0 = time.perf_counter()
    results = run_sweep(ctx)
    elapsed = time.perf_counter() - t0
    spec_keys.update(ctx.runner.trace_spec_keys())
    return elapsed, results


def time_inner_loop(args, compile_traces: bool = True,
                    columnar: bool = True):
    """Per-repetition seconds of one Machine.run on a TLS workload.

    ``--warmup`` repetitions run first and are excluded from the
    samples: the first run pays one-time costs (trace compilation into
    the process-wide memo, branch-predictor warm allocation) that are
    not inner-loop throughput.  Returns ``(records, samples)`` — use
    :func:`summarize` for best/median/stdev.
    """
    trace = materialize(_bench_spec(args), cache_dir=None)
    records = count_records(trace)
    config = MachineConfig(
        compile_traces=compile_traces, columnar=columnar
    )
    for _ in range(max(0, args.warmup)):
        Machine(config).run(trace)
    samples = []
    for _ in range(max(1, args.repeat)):
        machine = Machine(config)
        t0 = time.perf_counter()
        machine.run(trace)
        samples.append(time.perf_counter() - t0)
    return records, samples


def summarize(records: int, samples) -> dict:
    """Best-of/median/stdev throughput summary of timing ``samples``.

    Best-of-N stays the headline number (and the regression-gate
    input): it is the least noise-contaminated estimate of the true
    cost on a busy runner.  Median and the records/second stdev ride
    along so the trajectory records how noisy each measurement was —
    a regression with stdev near the delta is runner noise, one with
    tight samples is real.
    """
    rps = [records / s for s in samples if s > 0]
    best = min(samples)
    return {
        "seconds": round(best, 3),
        "median_seconds": round(statistics.median(samples), 3),
        "records_per_second": round(max(rps), 1) if rps else 0.0,
        "median_records_per_second": round(
            statistics.median(rps), 1
        ) if rps else 0.0,
        "stdev_records_per_second": round(
            statistics.pstdev(rps), 1
        ) if rps else 0.0,
    }


def _bench_spec(args) -> TraceSpec:
    return TraceSpec(
        benchmark="new_order",
        tls_mode=True,
        n_transactions=args.transactions,
        seed=args.seed,
        scale=TPCCScale.tiny() if args.tiny else None,
    )


def time_speculative_scenario(args):
    """Figure-5 TLS sub-thread (baseline) mode, five ways.

    Returns ``(records, samples)`` where ``samples`` maps ``spec_on``
    (the default: journaled batches + columnar bulk loads and stores),
    ``columnar_stores_off`` (bulk loads without the store kernel),
    ``columnar_off`` (batches without either columnar resolver),
    ``spec_off`` (batching restricted to non-speculative epochs), and
    ``interpreted`` to per-repetition seconds lists.  One Machine per
    timing (compile caches are process-wide, so compilation cost is
    amortized exactly as in the harness); the variants run interleaved
    inside each repetition so slow drift of the host clock speed hits
    all equally, and ``--warmup`` interleaved repetitions are
    discarded first.
    """
    trace = materialize(_bench_spec(args), cache_dir=None)
    records = count_records(trace)
    base = MachineConfig.for_mode(ExecutionMode.BASELINE)
    if args.no_columnar:
        base = dataclasses.replace(base, columnar=False)
    if args.no_columnar_stores:
        base = dataclasses.replace(base, columnar_stores=False)
    variants = {
        "spec_on": base,
        "columnar_stores_off": dataclasses.replace(
            base, columnar_stores=False
        ),
        "columnar_off": dataclasses.replace(
            base, columnar=False, columnar_stores=False
        ),
        "spec_off": dataclasses.replace(base, speculative_batches=False),
        "interpreted": dataclasses.replace(base, compile_traces=False),
    }
    for _ in range(max(0, args.warmup)):
        for config in variants.values():
            Machine(config).run(trace)
    samples = {name: [] for name in variants}
    for _ in range(max(1, args.repeat)):
        for name, config in variants.items():
            machine = Machine(config)
            t0 = time.perf_counter()
            machine.run(trace)
            samples[name].append(time.perf_counter() - t0)
    return records, samples


def time_compiled_engine(args):
    """Inner-loop workload under the compiled vs the pure event loop.

    Selection happens per Machine construction, so flipping the kill
    switch between repetitions times both engines on the same trace
    in the same process, interleaved like the speculative scenario.
    Returns ``(records, samples)`` with ``compiled`` / ``pure`` sample
    lists, or None when no compiled twin is importable (source
    checkouts without the ``[speed]`` build — the common case outside
    CI).
    """
    if engine_kind() == "pure":
        return None
    trace = materialize(_bench_spec(args), cache_dir=None)
    records = count_records(trace)
    config = MachineConfig()

    def run_one(forced_pure: bool) -> float:
        if forced_pure:
            os.environ[KILL_SWITCH] = "1"
        try:
            machine = Machine(config)
        finally:
            if forced_pure:
                del os.environ[KILL_SWITCH]
        t0 = time.perf_counter()
        machine.run(trace)
        return time.perf_counter() - t0

    for _ in range(max(0, args.warmup)):
        run_one(False)
        run_one(True)
    samples = {"compiled": [], "pure": []}
    for _ in range(max(1, args.repeat)):
        samples["compiled"].append(run_one(False))
        samples["pure"].append(run_one(True))
    return records, samples


def runner_class() -> str:
    """Coarse machine identity for the BENCH_speed.json trajectory.

    Throughput is only comparable between runs on the same kind of
    machine, so trajectory regression checks are scoped to this key.
    """
    return (
        f"{platform.system()}-{platform.machine()}"
        f"-cpu{os.cpu_count() or 1}"
    )


def append_trajectory(path: pathlib.Path, entries, min_ratio: float) -> int:
    """Append ``entries`` to the append-only trajectory file.

    The regression gate is per scenario: each new entry is compared
    against the most recent previous entry with the same runner class,
    scale, and ``scenario`` ("inner_loop" when absent — the field
    predates the speculative scenario).  Returns 1 when any scenario's
    records/second fell below ``min_ratio`` times its previous entry,
    else 0.  The file is never rewritten — entries only accumulate,
    preserving the full performance history.
    """
    history = []
    if path.exists():
        with open(path) as fh:
            history = json.load(fh)
    status = 0
    for entry in entries:
        scenario = entry.get("scenario", "inner_loop")
        previous = None
        for old in reversed(history):
            if (
                old.get("runner") == entry["runner"]
                and old.get("scale") == entry["scale"]
                and old.get("scenario", "inner_loop") == scenario
            ):
                previous = old
                break
        if previous:
            prev_rps = previous.get("records_per_second") or 0.0
            ratio = (
                entry["records_per_second"] / prev_rps if prev_rps else None
            )
            if ratio is not None:
                entry["ratio_to_previous"] = round(ratio, 3)
                if ratio < min_ratio:
                    print(
                        f"ERROR: {scenario} throughput regressed to "
                        f"{ratio:.2f}x of the previous entry on "
                        f"{entry['runner']} (threshold {min_ratio}x)",
                        file=sys.stderr,
                    )
                    status = 1
        history.append(entry)
    atomic_write_json(path, history)
    print(f"appended to {path} ({len(history)} entries)")
    issues = lint_bench_trajectory(path)
    if issues:
        print(
            f"ERROR: {path} fails the bench-trajectory schema lint:",
            file=sys.stderr,
        )
        for issue in issues[:20]:
            print(f"  {issue}", file=sys.stderr)
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--tiny", action="store_true",
                        help="use the tiny TPC-C scale")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parallel worker count (0 = all CPUs)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="inner-loop timing repetitions (best-of)")
    parser.add_argument(
        "--warmup", type=int, default=1, metavar="N",
        help=("untimed repetitions before each best-of measurement "
              "(default 1; they absorb one-time compile/allocation "
              "costs so the best-of measures steady state)"),
    )
    parser.add_argument(
        "--no-compile-traces", action="store_true",
        help=("time only the interpreted simulator path (skip the "
              "compiled-path measurement)"),
    )
    parser.add_argument(
        "--no-columnar", action="store_true",
        help=("disable the columnar bulk load resolver in the timed "
              "configurations (the speculative scenario then times "
              "spec_on with columnar off too)"),
    )
    parser.add_argument(
        "--no-columnar-stores", action="store_true",
        help=("disable the columnar bulk store resolver in the timed "
              "configurations"),
    )
    parser.add_argument(
        "--json", action="store_true",
        help=("print the full perf document as JSON to stdout after "
              "the human-readable summary (machine-readable output "
              "for tooling that does not want to read --out)"),
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "results" / "perf.json",
    )
    parser.add_argument(
        "--trajectory", type=pathlib.Path, default=None, metavar="FILE",
        help=("append the inner-loop result to this append-only JSON "
              "trajectory and fail if it regressed below --min-ratio of "
              "the previous entry on the same runner class"),
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.7,
        help=("trajectory regression threshold relative to the previous "
              "same-runner same-scenario entry (default 0.7)"),
    )
    parser.add_argument(
        "--spec-min-vs-interpreted", type=float, default=None,
        metavar="RATIO",
        help=("fail unless the speculative scenario's batching-on "
              "throughput is at least RATIO times its interpreted "
              "throughput measured in the same run (CI gate; off by "
              "default)"),
    )
    parser.add_argument(
        "--compiled-min-ratio", type=float, default=None,
        metavar="RATIO",
        help=("fail unless the compiled event loop is at least RATIO "
              "times the pure-Python loop measured in the same run; "
              "also fails if no compiled twin is importable (CI gate "
              "for the [speed] build; off by default)"),
    )
    args = parser.parse_args(argv)

    real_stdout = sys.stdout
    if args.json:
        # All human-readable progress moves to stderr so stdout
        # carries exactly one JSON document.
        sys.stdout = sys.stderr

    n_cpus = os.cpu_count() or 1
    jobs = args.jobs if args.jobs > 0 else n_cpus
    bench_t0 = time.perf_counter()
    manifest = build_manifest(
        command=["python", "benchmarks/bench_speed.py"]
        + (list(argv) if argv is not None else sys.argv[1:]),
        config={
            "transactions": args.transactions,
            "seed": args.seed,
            "scale": "tiny" if args.tiny else "default",
            "jobs": jobs,
            "repeat": args.repeat,
            "warmup": args.warmup,
            "compile_traces": not args.no_compile_traces,
            "columnar": not args.no_columnar,
            "columnar_stores": not args.no_columnar_stores,
        },
        seed=args.seed,
    )
    # Content-hash keys of every trace the bench touches (harness
    # sweeps and the direct materialize calls); threaded into every
    # manifest this run writes.
    spec_keys: set = {spec_key(_bench_spec(args))}

    print("timing serial harness (figure5+figure6, jobs=1) ...")
    serial_s, serial_results = time_harness(args, jobs=1, spec_keys=spec_keys)
    print(f"  {serial_s:.2f}s")

    if jobs > 1:
        print(f"timing parallel harness (jobs={jobs}) ...")
        parallel_s, parallel_results = time_harness(
            args, jobs=jobs, spec_keys=spec_keys
        )
        print(f"  {parallel_s:.2f}s")
        identical = (
            result_to_dict(serial_results)
            == result_to_dict(parallel_results)
        )
        if not identical:
            print("ERROR: parallel results differ from serial",
                  file=sys.stderr)
        harness = {
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3)
            if parallel_s > 0 else None,
            "results_identical": identical,
        }
    else:
        # One worker cannot demonstrate a parallel speedup; recording a
        # process-pool "slowdown" here would just be measuring overhead.
        print("single-CPU machine: skipping parallel harness comparison")
        identical = True
        harness = {
            "serial_seconds": round(serial_s, 3),
            "parallel_comparison": "skipped_single_core",
        }

    print("timing simulator inner loop (compiled traces) ..."
          if not args.no_compile_traces
          else "timing simulator inner loop (interpreted) ...")
    records, inner_samples = time_inner_loop(
        args, compile_traces=not args.no_compile_traces,
        columnar=not args.no_columnar,
    )
    inner = summarize(records, inner_samples)
    records_per_s = inner["records_per_second"]
    print(f"  {records} records in {inner['seconds']:.2f}s "
          f"({records_per_s:,.0f} records/s, median "
          f"{inner['median_records_per_second']:,.0f} "
          f"± {inner['stdev_records_per_second']:,.0f})")

    inner_loop = dict(inner)
    inner_loop["records"] = records
    inner_loop["compile_traces"] = not args.no_compile_traces
    inner_loop["columnar"] = not args.no_columnar
    if not args.no_compile_traces:
        print("timing simulator inner loop (interpreted, for reference) ...")
        records_i, interp_samples = time_inner_loop(
            args, compile_traces=False
        )
        interp = summarize(records_i, interp_samples)
        print(f"  {records_i} records in {interp['seconds']:.2f}s "
              f"({interp['records_per_second']:,.0f} records/s)")
        inner_loop["interpreted_seconds"] = interp["seconds"]
        inner_loop["interpreted_records_per_second"] = (
            interp["records_per_second"]
        )

    print("timing speculative scenario (TLS sub-thread mode, "
          "columnar on / stores off / off, batches off, "
          "interpreted) ...")
    spec_records, spec_samples = time_speculative_scenario(args)
    spec = {
        name: summarize(spec_records, samples)
        for name, samples in spec_samples.items()
    }
    spec_rps = {
        name: summary["records_per_second"]
        for name, summary in spec.items()
    }
    ratio_vs_off = (
        spec_rps["spec_on"] / spec_rps["spec_off"]
        if spec_rps["spec_off"] else None
    )
    ratio_vs_interp = (
        spec_rps["spec_on"] / spec_rps["interpreted"]
        if spec_rps["interpreted"] else None
    )
    ratio_vs_columnar_off = (
        spec_rps["spec_on"] / spec_rps["columnar_off"]
        if spec_rps["columnar_off"] else None
    )
    ratio_vs_stores_off = (
        spec_rps["spec_on"] / spec_rps["columnar_stores_off"]
        if spec_rps["columnar_stores_off"] else None
    )
    for name in ("spec_on", "columnar_stores_off", "columnar_off",
                 "spec_off", "interpreted"):
        print(f"  {name:<19} {spec_records} records in "
              f"{spec[name]['seconds']:.2f}s "
              f"({spec_rps[name]:,.0f} records/s, median "
              f"{spec[name]['median_records_per_second']:,.0f} "
              f"± {spec[name]['stdev_records_per_second']:,.0f})")
    print(f"  on/stores_off {ratio_vs_stores_off:.2f}x   "
          f"on/columnar_off {ratio_vs_columnar_off:.2f}x   "
          f"on/off {ratio_vs_off:.2f}x   on/interpreted "
          f"{ratio_vs_interp:.2f}x")
    speculative = dict(spec["spec_on"])
    speculative["mode"] = ExecutionMode.BASELINE
    speculative["records"] = spec_records
    speculative.update({
        "columnar_stores_off_records_per_second":
            spec_rps["columnar_stores_off"],
        "columnar_off_records_per_second": spec_rps["columnar_off"],
        "spec_off_records_per_second": spec_rps["spec_off"],
        "interpreted_records_per_second": spec_rps["interpreted"],
        "ratio_vs_columnar_stores_off": round(ratio_vs_stores_off, 3)
        if ratio_vs_stores_off else None,
        "ratio_vs_columnar_off": round(ratio_vs_columnar_off, 3)
        if ratio_vs_columnar_off else None,
        "ratio_vs_spec_off": round(ratio_vs_off, 3)
        if ratio_vs_off else None,
        "ratio_vs_interpreted": round(ratio_vs_interp, 3)
        if ratio_vs_interp else None,
    })
    spec_gate_ok = True
    if args.spec_min_vs_interpreted is not None:
        if (ratio_vs_interp or 0.0) < args.spec_min_vs_interpreted:
            print(
                f"ERROR: speculative scenario is only "
                f"{ratio_vs_interp:.2f}x the interpreted baseline "
                f"(threshold {args.spec_min_vs_interpreted}x)",
                file=sys.stderr,
            )
            spec_gate_ok = False

    engine_gate_ok = True
    compiled_result = time_compiled_engine(args)
    if compiled_result is None:
        # No [speed] build in this interpreter: record the skip the
        # same way the single-core harness comparison does instead of
        # timing the pure loop against itself.
        print("no compiled engine module: skipping compiled-engine "
              "scenario")
        compiled_engine = {"comparison": "skipped_no_compiled_module"}
        if args.compiled_min_ratio is not None:
            print(
                "ERROR: --compiled-min-ratio given but no compiled "
                "engine twin is importable (build with "
                "REPRO_SPEED=1 pip install -e .[speed])",
                file=sys.stderr,
            )
            engine_gate_ok = False
    else:
        print("timing compiled vs pure event loop ...")
        eng_records, eng_samples = compiled_result
        compiled = summarize(eng_records, eng_samples["compiled"])
        pure = summarize(eng_records, eng_samples["pure"])
        ratio_vs_pure = (
            compiled["records_per_second"] / pure["records_per_second"]
            if pure["records_per_second"] else None
        )
        for name, summary in (("compiled", compiled), ("pure", pure)):
            print(f"  {name:<9} {eng_records} records in "
                  f"{summary['seconds']:.2f}s "
                  f"({summary['records_per_second']:,.0f} records/s)")
        print(f"  compiled/pure {ratio_vs_pure:.2f}x")
        compiled_engine = dict(compiled)
        compiled_engine["records"] = eng_records
        compiled_engine["pure_records_per_second"] = (
            pure["records_per_second"]
        )
        compiled_engine["ratio_vs_pure"] = (
            round(ratio_vs_pure, 3) if ratio_vs_pure else None
        )
        if args.compiled_min_ratio is not None:
            if (ratio_vs_pure or 0.0) < args.compiled_min_ratio:
                print(
                    f"ERROR: compiled event loop is only "
                    f"{ratio_vs_pure:.2f}x the pure-Python loop "
                    f"(threshold {args.compiled_min_ratio}x)",
                    file=sys.stderr,
                )
                engine_gate_ok = False

    perf = {
        "config": {
            "transactions": args.transactions,
            "seed": args.seed,
            "scale": "tiny" if args.tiny else "default",
            "jobs": jobs,
            "cpu_count": n_cpus,
            "python": platform.python_version(),
            "engine": engine_kind(),
        },
        "harness": harness,
        "inner_loop": inner_loop,
        "speculative_scenario": speculative,
        "compiled_engine": compiled_engine,
        "manifest": finish_manifest(
            manifest, time.perf_counter() - bench_t0,
            trace_spec_keys=sorted(spec_keys),
        ),
    }
    atomic_write_json(args.out, perf)
    print(f"wrote {args.out}")
    if args.json:
        print(
            json.dumps(perf, indent=1, sort_keys=True),
            file=real_stdout,
        )

    status = 0 if (identical and spec_gate_ok and engine_gate_ok) else 1
    if args.trajectory is not None:
        final_manifest = finish_manifest(
            manifest, time.perf_counter() - bench_t0,
            trace_spec_keys=sorted(spec_keys),
        )
        entries = [
            {
                "scenario": "inner_loop",
                "runner": runner_class(),
                "scale": perf["config"]["scale"],
                "records": records,
                "records_per_second": records_per_s,
                "median_records_per_second":
                    inner["median_records_per_second"],
                "stdev_records_per_second":
                    inner["stdev_records_per_second"],
                "compile_traces": not args.no_compile_traces,
                "columnar": not args.no_columnar,
                "python": platform.python_version(),
                "manifest": final_manifest,
            },
            {
                "scenario": "speculative_batches",
                "runner": runner_class(),
                "scale": perf["config"]["scale"],
                "mode": ExecutionMode.BASELINE,
                "records": spec_records,
                "records_per_second": speculative["records_per_second"],
                "median_records_per_second":
                    speculative["median_records_per_second"],
                "stdev_records_per_second":
                    speculative["stdev_records_per_second"],
                "columnar_stores_off_records_per_second":
                    speculative["columnar_stores_off_records_per_second"],
                "columnar_off_records_per_second":
                    speculative["columnar_off_records_per_second"],
                "spec_off_records_per_second":
                    speculative["spec_off_records_per_second"],
                "interpreted_records_per_second":
                    speculative["interpreted_records_per_second"],
                "ratio_vs_columnar_stores_off":
                    speculative["ratio_vs_columnar_stores_off"],
                "ratio_vs_columnar_off":
                    speculative["ratio_vs_columnar_off"],
                "ratio_vs_spec_off": speculative["ratio_vs_spec_off"],
                "ratio_vs_interpreted":
                    speculative["ratio_vs_interpreted"],
                "python": platform.python_version(),
                "manifest": final_manifest,
            },
        ]
        if "records" in compiled_engine:
            entries.append({
                "scenario": "compiled_engine",
                "runner": runner_class(),
                "scale": perf["config"]["scale"],
                "records": compiled_engine["records"],
                "records_per_second":
                    compiled_engine["records_per_second"],
                "median_records_per_second":
                    compiled_engine["median_records_per_second"],
                "stdev_records_per_second":
                    compiled_engine["stdev_records_per_second"],
                "pure_records_per_second":
                    compiled_engine["pure_records_per_second"],
                "ratio_vs_pure": compiled_engine["ratio_vs_pure"],
                "python": platform.python_version(),
                "manifest": final_manifest,
            })
        status = max(
            status,
            append_trajectory(args.trajectory, entries, args.min_ratio),
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
