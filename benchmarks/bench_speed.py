"""Wall-clock speed benchmark for the experiment harness.

Times three things and writes them to ``results/perf.json`` so the
performance trajectory is tracked across PRs:

1. **Serial harness time** — Figure 5 + Figure 6 with ``jobs=1``.
2. **Parallel harness time** — the same sweep with ``--jobs N``
   (default: all CPUs), which must produce bit-identical results.
3. **Inner-loop throughput** — trace records simulated per second by a
   single ``Machine.run`` on a pre-generated TLS workload.

Unlike the pytest-benchmark files next to it this is a plain script
(it writes an artifact, not a benchmark table):

    PYTHONPATH=src python benchmarks/bench_speed.py --tiny

Traces are pre-generated (and the in-memory memo shared) before the
timed harness runs so both configurations measure simulation fan-out,
not workload generation.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.harness import ExperimentContext, JobRunner  # noqa: E402
from repro.harness.export import result_to_dict  # noqa: E402
from repro.harness.figure5 import run_figure5  # noqa: E402
from repro.harness.figure6 import run_figure6  # noqa: E402
from repro.harness.tracecache import TraceSpec, materialize  # noqa: E402
from repro.sim import Machine, MachineConfig  # noqa: E402
from repro.tpcc import TPCCScale  # noqa: E402
from repro.trace.events import (  # noqa: E402
    ParallelRegion,
    SerialSegment,
    WorkloadTrace,
)


def count_records(trace: WorkloadTrace) -> int:
    total = 0
    for txn in trace.transactions:
        for segment in txn.segments:
            if isinstance(segment, SerialSegment):
                total += len(segment.records)
            elif isinstance(segment, ParallelRegion):
                total += sum(len(e.records) for e in segment.epochs)
    return total


def make_context(args, jobs: int) -> ExperimentContext:
    scale = TPCCScale.tiny() if args.tiny else None
    runner = JobRunner(jobs=jobs, trace_cache=None)
    return ExperimentContext(
        n_transactions=args.transactions, seed=args.seed, scale=scale,
        runner=runner,
    )


def run_sweep(ctx: ExperimentContext):
    return run_figure5(ctx), run_figure6(ctx)


def time_harness(args, jobs: int):
    """Time figure5+figure6 once with the given fan-out."""
    ctx = make_context(args, jobs)
    # Warm the trace memo outside the timed region: both the serial and
    # the parallel configuration then measure pure simulation time.
    run_sweep(ctx)
    t0 = time.perf_counter()
    results = run_sweep(ctx)
    return time.perf_counter() - t0, results


def time_inner_loop(args):
    """Records/second of one Machine.run on a TLS workload."""
    spec = TraceSpec(
        benchmark="new_order",
        tls_mode=True,
        n_transactions=args.transactions,
        seed=args.seed,
        scale=TPCCScale.tiny() if args.tiny else None,
    )
    trace = materialize(spec, cache_dir=None)
    records = count_records(trace)
    best = float("inf")
    for _ in range(max(1, args.repeat)):
        machine = Machine(MachineConfig())
        t0 = time.perf_counter()
        machine.run(trace)
        best = min(best, time.perf_counter() - t0)
    return records, best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--tiny", action="store_true",
                        help="use the tiny TPC-C scale")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parallel worker count (0 = all CPUs)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="inner-loop timing repetitions (best-of)")
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "results" / "perf.json",
    )
    args = parser.parse_args(argv)

    n_cpus = os.cpu_count() or 1
    # At least 2 workers so the process-pool path is actually exercised
    # (and its overhead measured) even on a single-core machine.
    jobs = args.jobs if args.jobs > 0 else max(2, n_cpus)

    print("timing serial harness (figure5+figure6, jobs=1) ...")
    serial_s, serial_results = time_harness(args, jobs=1)
    print(f"  {serial_s:.2f}s")
    print(f"timing parallel harness (jobs={jobs}) ...")
    parallel_s, parallel_results = time_harness(args, jobs=jobs)
    print(f"  {parallel_s:.2f}s")

    identical = (
        result_to_dict(serial_results) == result_to_dict(parallel_results)
    )
    if not identical:
        print("ERROR: parallel results differ from serial", file=sys.stderr)

    print("timing simulator inner loop ...")
    records, inner_s = time_inner_loop(args)
    records_per_s = records / inner_s if inner_s > 0 else 0.0
    print(f"  {records} records in {inner_s:.2f}s "
          f"({records_per_s:,.0f} records/s)")

    perf = {
        "config": {
            "transactions": args.transactions,
            "seed": args.seed,
            "scale": "tiny" if args.tiny else "default",
            "jobs": jobs,
            "cpu_count": n_cpus,
            "python": platform.python_version(),
        },
        "harness": {
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3)
            if parallel_s > 0 else None,
            "results_identical": identical,
        },
        "inner_loop": {
            "records": records,
            "seconds": round(inner_s, 3),
            "records_per_second": round(records_per_s, 1),
        },
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(perf, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
