"""Setup shim so `pip install -e .` works in offline environments.

The environment this project targets has no network access and no `wheel`
package, so PEP 517 editable installs (which build a wheel) fail.  Keeping
a setup.py and omitting [build-system] from pyproject.toml makes pip fall
back to the legacy `setup.py develop` path, which works offline.

Opt-in compiled engine build
----------------------------

``REPRO_SPEED=1`` AOT-compiles the event-loop hot path: the pure-Python
reference ``repro/sim/engine_core.py`` is copied to a *generated twin*
``repro/sim/engine_core_speed.py`` (never checked in) and fed to mypyc,
producing an extension module that ``repro.sim.engine`` prefers at
import time.  The twin is byte-for-byte the reference source, so the
compiled and pure loops cannot drift; ``REPRO_NO_COMPILED_ENGINE=1``
at runtime forces the pure module even when the build exists.

    REPRO_SPEED=1 pip install -e .[speed]
    # or, in a checkout with mypy already present:
    REPRO_SPEED=1 python setup.py build_ext --inplace

The block degrades to a plain install when mypyc is unavailable or the
flag is unset — the default install never needs a compiler.
"""

import os
import shutil

from setuptools import find_packages, setup

ext_modules = []
if os.environ.get("REPRO_SPEED") == "1":
    try:
        from mypyc.build import mypycify
    except ImportError:
        print("REPRO_SPEED=1 but mypyc is not importable; "
              "install the [speed] extra — building pure-Python only")
    else:
        here = os.path.dirname(os.path.abspath(__file__))
        src = os.path.join(here, "src", "repro", "sim", "engine_core.py")
        twin = os.path.join(
            here, "src", "repro", "sim", "engine_core_speed.py"
        )
        shutil.copyfile(src, twin)
        ext_modules = mypycify(
            ["src/repro/sim/engine_core_speed.py"],
            opt_level="3",
        )

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Tolerating Dependences Between Large "
        "Speculative Threads Via Sub-Threads' (ISCA 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    ext_modules=ext_modules,
)
