"""Setup shim so `pip install -e .` works in offline environments.

The environment this project targets has no network access and no `wheel`
package, so PEP 517 editable installs (which build a wheel) fail.  Keeping
a setup.py and omitting [build-system] from pyproject.toml makes pip fall
back to the legacy `setup.py develop` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Tolerating Dependences Between Large "
        "Speculative Threads Via Sub-Threads' (ISCA 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
)
