"""TLS beyond TPC-C: a skewed key-value store (paper Section 1.3).

The paper closes its introduction claiming the sub-thread hardware
generalizes to "other application domains".  This example services
YCSB-style request batches against the minidb engine and sweeps the
Zipf skew of the key popularity: uniform traffic parallelizes almost
freely, while hot keys create exactly the unpredictable cross-thread
dependences sub-threads were built for — and also show speculation's
hard limit (a serial chain of read-modify-writes to one key cannot be
parallelized by any recovery mechanism).

Run:  python examples/kvstore_skew.py
"""

from repro.harness import run_kv_study
from repro.kv import KVSpec, generate_kv_workload
from repro.sim import ExecutionMode, Machine, MachineConfig


def main() -> None:
    spec = KVSpec()
    gw = generate_kv_workload(spec, n_batches=2)
    print(
        f"workload: {gw.operations} ops over {spec.n_keys} keys, "
        f"{gw.trace.epoch_count()} epochs of "
        f"~{gw.trace.average_epoch_size():.0f} instructions\n"
    )

    result = run_kv_study(n_batches=4)
    print(result.render())

    uniform = result.point(0.0)
    hot = result.point(1.3)
    print()
    print(
        f"skew 0.0 -> 1.3 costs all-or-nothing "
        f"{(1 - hot.no_subthread_speedup / uniform.no_subthread_speedup):.0%}"
        f" of its speedup but sub-threads only "
        f"{(1 - hot.baseline_speedup / uniform.baseline_speedup):.0%}."
    )
    print("Hot-key read-modify-write chains remain serial under any")
    print("recovery mechanism — speculation tolerates dependences, it")
    print("does not remove them (same lesson as examples/custom_workload).")

    # Bonus: what the dependence profiler says about the hot keys.
    gw = generate_kv_workload(KVSpec(zipf_theta=1.3), n_batches=4)
    machine = Machine(MachineConfig.for_mode(ExecutionMode.BASELINE))
    machine.run(gw.trace)
    print("\ntop dependences at theta=1.3 (hardware profiler):")
    print(machine.engine.profiler.report(pc_names=gw.recorder.pcs, n=4))


if __name__ == "__main__":
    main()
