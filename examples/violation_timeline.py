"""Draw Figure-1/4-style execution timelines from real simulations.

The paper's conceptual figures show speculative threads being violated
and rewound.  With event recording enabled, the simulator reproduces
those diagrams from actual executions: first the Figure 4 secondary-
violation microbenchmark (with and without start tables), then a real
NEW ORDER transaction.

Run:  python examples/violation_timeline.py
"""

from repro.harness.figure4 import figure4_workload
from repro.sim import Machine, MachineConfig, render_timeline
from repro.tpcc import TPCCScale, generate_workload


def show(title, workload, config):
    machine = Machine(config, record_events=True)
    machine.run(workload)
    print(f"\n== {title} ==")
    print(render_timeline(machine.events, width=68))


def main() -> None:
    show(
        "Figure 4(b): selective secondary violations (start tables ON)",
        figure4_workload(),
        MachineConfig(),
    )
    show(
        "Figure 4(a): start tables OFF — threads 3 and 4 restart fully",
        figure4_workload(),
        MachineConfig().with_tls(start_tables=False),
    )
    gw = generate_workload(
        "new_order", n_transactions=1, scale=TPCCScale.tiny()
    )
    show("one NEW ORDER transaction (per-item epochs)", gw.trace,
         MachineConfig())


if __name__ == "__main__":
    main()
