"""Parallelizing your own code on the TLS simulator.

The library is not TPC-C-specific: anything that runs against the
``repro.minidb`` engine under a :class:`TraceRecorder` can be split into
speculative threads with the trace builder and simulated.

This example ingests rows into a B-tree two ways:

* **hot ingest** — every speculative thread appends ascending keys, so
  all threads fight over the rightmost leaf.  TLS cannot conjure
  parallelism out of a serial dependence chain; the simulation shows the
  slowdown honestly.
* **partitioned ingest** — each thread gets its own key range (separate
  leaves), with one shared row-counter update per batch as the residual
  dependence.  Speculation wins, and a sub-thread spacing sweep shows
  the Figure 6 trade-off on custom code.

Run:  python examples/custom_workload.py
"""

from repro.minidb import Database, EngineOptions
from repro.sim import ExecutionMode, Machine, MachineConfig
from repro.trace import (
    TraceRecorder,
    TransactionTraceBuilder,
    WorkloadTrace,
)

BATCHES = 8
ROWS = 12


def build_ingest_trace(tls_mode: bool, partitioned: bool) -> WorkloadTrace:
    recorder = TraceRecorder()
    db = Database(recorder=recorder, options=EngineOptions.optimized())
    table = db.create_table("events", entry_size=48)
    counter_addr = recorder.addr_map.txn_counter_addr() + 64
    if partitioned:
        # Pre-populate (untraced) so each batch's key range already
        # lives in its own leaves — otherwise every batch funnels
        # through the initially-single root leaf.
        for batch in range(BATCHES):
            for j in range(100, 900, 16):
                table.insert((batch * 1_000 + j,), {"seed": j})

    workload = WorkloadTrace(
        name="partitioned" if partitioned else "hot"
    )
    builder = TransactionTraceBuilder("ingest", recorder,
                                      tls_mode=tls_mode)
    builder.begin_serial()
    txn = db.begin()
    builder.begin_parallel()
    for batch in range(BATCHES):
        builder.begin_epoch()
        recorder.compute(recorder.costs.app_work)
        for i in range(ROWS):
            key = (batch * 1_000 + i) if partitioned else (
                batch * ROWS + i
            )
            table.insert((key,), {"payload": key})
            txn.log("event.insert", (key,))
        # Shared row counter: one residual dependence per batch.
        recorder.load(counter_addr, 8, "ingest.counter_read")
        recorder.store(counter_addr, 8, "ingest.counter_write")
    builder.end_parallel()
    builder.begin_serial()
    txn.commit()
    db.commit_epilogue()
    workload.transactions.append(builder.finish())
    return workload


def sweep(label: str, partitioned: bool) -> None:
    seq = build_ingest_trace(tls_mode=False, partitioned=partitioned)
    tls = build_ingest_trace(tls_mode=True, partitioned=partitioned)
    base = Machine(
        MachineConfig.for_mode(ExecutionMode.SEQUENTIAL)
    ).run(seq).total_cycles
    print(f"\n== {label} ==  (sequential: {base:.0f} cycles, "
          f"{tls.epoch_count()} epochs of "
          f"~{tls.average_epoch_size():.0f} instructions)")
    print(f"{'config':<28}{'cycles':>10}{'speedup':>9}{'violations':>12}")
    nosub = Machine(
        MachineConfig.for_mode(ExecutionMode.NO_SUBTHREAD)
    ).run(tls)
    print(
        f"{'all-or-nothing':<28}{nosub.total_cycles:>10.0f}"
        f"{base / nosub.total_cycles:>9.2f}"
        f"{nosub.primary_violations:>12}"
    )
    for spacing in (50, 100, 200, 400):
        cfg = MachineConfig().with_tls(
            max_subthreads=8, subthread_spacing=spacing
        )
        stats = Machine(cfg).run(tls)
        label_row = f"8 sub-threads @ every {spacing}"
        print(
            f"{label_row:<28}{stats.total_cycles:>10.0f}"
            f"{base / stats.total_cycles:>9.2f}"
            f"{stats.primary_violations:>12}"
        )


def main() -> None:
    sweep("hot ingest (one shared leaf — inherently serial)",
          partitioned=False)
    sweep("partitioned ingest (independent leaves + shared counter)",
          partitioned=True)
    print("\nTakeaway: speculation tolerates *dependences*, it does not")
    print("remove them — partition the data, keep the shared touches")
    print("rare, and let sub-threads absorb what remains.")


if __name__ == "__main__":
    main()
