"""Running at the paper's thread sizes.

The default configuration scales compute budgets to 1/48 of the paper's
so the full evaluation runs in minutes.  Setting the cost scale to 1.0
produces NEW ORDER epochs of ~50k dynamic instructions — the paper's
62k-instruction regime — and the simulation stays fast because the
*record* count is unchanged (compute batches just grow).

At this size the paper's spacing lesson shows up unmistakably: the
scaled-down spacing (250) covers only 4% of each thread, so sub-threads
barely help; spacing near thread-size/8 (the analog of the paper's
5,000-instruction choice) restores the full benefit.

Run:  python examples/paper_size_threads.py
"""

from repro.sim import ExecutionMode, Machine, MachineConfig
from repro.tpcc import generate_workload
from repro.trace import paper_scale_costs


def main() -> None:
    costs = paper_scale_costs()
    tls = generate_workload("new_order", n_transactions=3, costs=costs)
    seq = generate_workload(
        "new_order", tls_mode=False, n_transactions=3, costs=costs
    )
    print(
        f"NEW ORDER at cost scale 1.0: "
        f"{tls.trace.average_epoch_size():.0f} instructions/thread "
        f"(paper: 62k), {tls.trace.epoch_count()} threads"
    )
    base = Machine(
        MachineConfig.for_mode(ExecutionMode.SEQUENTIAL)
    ).run(seq.trace).total_cycles

    configs = [
        ("all-or-nothing",
         MachineConfig.for_mode(ExecutionMode.NO_SUBTHREAD)),
        ("8 sub-threads @ 250 (scaled-down spacing)",
         MachineConfig.for_mode(ExecutionMode.BASELINE)),
        ("8 sub-threads @ 6250 (thread size / 8)",
         MachineConfig().with_tls(subthread_spacing=6250)),
        ("8 sub-threads, adaptive spacing",
         MachineConfig().with_tls(adaptive_spacing=True)),
        ("no speculation (upper bound)",
         MachineConfig.for_mode(ExecutionMode.NO_SPECULATION)),
    ]
    print(f"\n{'configuration':<44}{'speedup':>8}{'violations':>12}")
    for label, cfg in configs:
        stats = Machine(cfg).run(tls.trace)
        print(
            f"{label:<44}{base / stats.total_cycles:>8.2f}"
            f"{stats.primary_violations + stats.secondary_violations:>12}"
        )
    print(
        "\nThe paper chose ~5,000 instructions between sub-threads for"
        "\n~62k-instruction threads; the same size/8 rule is what wins"
        "\nhere — spacing must track thread size (Section 5.1)."
    )


if __name__ == "__main__":
    main()
