"""Experiment E7: the hardware dependence profiler on DELIVERY OUTER.

Shows the Section 3.1 mechanism in action: exposed-load tables capture
load PCs, the L2 attributes failed speculation cycles to
(load PC, store PC) pairs, and the software interface reports them
ranked by harm — the input a programmer uses to decide what to fix.

Run:  python examples/profile_dependences.py
"""

from repro.sim import ExecutionMode, Machine, MachineConfig
from repro.tpcc import generate_workload


def main() -> None:
    gw = generate_workload("delivery_outer", tls_mode=True,
                           n_transactions=4)
    print(
        f"DELIVERY OUTER: {gw.trace.epoch_count()} epochs, "
        f"avg {gw.trace.average_epoch_size():.0f} instructions each\n"
    )
    for mode in (ExecutionMode.NO_SUBTHREAD, ExecutionMode.BASELINE):
        machine = Machine(MachineConfig.for_mode(mode))
        stats = machine.run(gw.trace)
        print(f"== {mode} ==")
        print(stats.summary())
        print(machine.engine.profiler.report(pc_names=gw.recorder.pcs,
                                             n=6))
        table = machine.engine.exposed_load_tables[0]
        print(
            f"(exposed-load table CPU0: {table.updates} updates, "
            f"{table.lookups} lookups, "
            f"{table.tag_mismatches} tag aliases)\n"
        )
    print("Note how the same dependences cost far fewer failed cycles")
    print("under BASELINE: sub-threads rewind only to the checkpoint")
    print("containing the violated load.")


if __name__ == "__main__":
    main()
