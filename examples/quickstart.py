"""Quickstart: simulate NEW ORDER under every execution mode.

Generates the TPC-C NEW ORDER workload trace (the paper's flagship
transaction), replays it on the simulated 4-CPU CMP in each of the five
Figure-5 execution modes, and prints the speedups and cycle breakdowns.

Run:  python examples/quickstart.py
"""

from repro.sim import ExecutionMode, Machine, MachineConfig
from repro.tpcc import generate_workload


def main() -> None:
    print("Generating NEW ORDER traces (4 transactions)...")
    tls = generate_workload("new_order", tls_mode=True,
                            n_transactions=4).trace
    seq = generate_workload("new_order", tls_mode=False,
                            n_transactions=4).trace
    print(
        f"  TLS trace: {tls.instruction_count} instructions, "
        f"{tls.epoch_count()} epochs, coverage {tls.coverage:.0%}, "
        f"avg epoch {tls.average_epoch_size():.0f} instructions"
    )

    sequential_cycles = None
    for mode in ExecutionMode.ALL:
        trace = seq if mode == ExecutionMode.SEQUENTIAL else tls
        stats = Machine(MachineConfig.for_mode(mode)).run(trace)
        if sequential_cycles is None:
            sequential_cycles = stats.total_cycles
        speedup = sequential_cycles / stats.total_cycles
        print(f"{stats.summary(mode)}  speedup={speedup:.2f}")

    print()
    print("The BASELINE row is the paper's contribution: TLS with 8")
    print("sub-thread checkpoints per speculative thread.  Compare its")
    print("'failed' fraction with NO SUB-THREAD (all-or-nothing TLS).")


if __name__ == "__main__":
    main()
