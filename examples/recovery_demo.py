"""Crash recovery on the minidb storage engine.

minidb is a real (if small) transactional engine: with physical logging
enabled, every B-tree modification writes a redo record to the WAL, and
``repro.minidb.recovery.recover`` rebuilds exactly the committed state —
in-flight transactions at the "crash" vanish.

This demo runs a few TPC-C-flavoured transfers, crashes mid-transaction,
recovers, and verifies the recovered balances.

Run:  python examples/recovery_demo.py
"""

from repro.minidb import Database, recover
from repro.minidb.recovery import committed_transactions


def main() -> None:
    db = Database(physical_logging=True)
    accounts = db.create_table("accounts")

    setup = db.begin()
    for i in range(8):
        accounts.insert((i,), {"balance": 100})
    setup.commit()

    def transfer(src, dst, amount):
        txn = db.begin()
        accounts.read_modify_write(
            (src,), lambda row: {**row, "balance": row["balance"] - amount}
        )
        accounts.read_modify_write(
            (dst,), lambda row: {**row, "balance": row["balance"] + amount}
        )
        return txn

    transfer(0, 1, 30).commit()
    transfer(2, 3, 50).commit()

    # A transfer is in flight when the "machine crashes": it debited the
    # source but the crash hits before the credit... actually before the
    # commit record — either way it must not survive recovery.
    in_flight = transfer(4, 5, 999)
    del in_flight  # no commit: this transaction is a loser

    print(f"log: {len(db.log.records)} records, committed txns = "
          f"{sorted(committed_transactions(db.log.records))}")

    recovered = recover(db.log.records)
    table = recovered.table("accounts")
    balances = {k[0]: v["balance"] for k, v in table.scan_range((-1,))}
    print("recovered balances:", balances)

    assert balances[0] == 70 and balances[1] == 130
    assert balances[2] == 50 and balances[3] == 150
    assert balances[4] == 100 and balances[5] == 100, (
        "the in-flight transfer must not survive recovery"
    )
    total = sum(balances.values())
    assert total == 800, "money must be conserved"
    print(f"total conserved: {total}; the in-flight transfer vanished. OK")


if __name__ == "__main__":
    main()
