"""The iterative parallelization workflow of Section 3, end to end.

The paper's methodology: (i) parallelize the transaction naively,
(ii) run it on TLS hardware with the dependence profiler enabled,
(iii) read off which (load PC, store PC) pair wastes the most cycles,
(iv) change the DBMS to remove that dependence, and repeat.

This script performs that loop for NEW ORDER against the minidb engine.
At each step it prints the profiler's top offender and then applies the
corresponding engine option — exactly the tuning sequence that takes the
engine from 'unoptimized' to the paper's evaluated configuration.

Run:  python examples/tuning_walkthrough.py
"""

from repro.minidb import EngineOptions
from repro.sim import ExecutionMode, Machine, MachineConfig
from repro.tpcc import generate_workload

#: Map from the profiler's store-PC site names to the engine option that
#: removes the dependence (what a developer would change in the DBMS).
FIXES = [
    ("log.tail_write", "shared_log_tail",
     "give each epoch a private log buffer, spliced at commit"),
    ("bufferpool.lru_write", "lru_updates",
     "defer LRU-chain maintenance to a per-thread buffer"),
    ("bufferpool.pin_write", "pin_stores",
     "keep page pin counts in per-thread arrays"),
    ("bufferpool.unpin", "pin_stores",
     "keep page pin counts in per-thread arrays"),
    ("locks.bucket_write", "lock_bucket_stores",
     "stage lock grants in a per-thread lock cache"),
]


def measure(options, label):
    gw = generate_workload(
        "new_order", tls_mode=True, options=options, n_transactions=4
    )
    machine = Machine(MachineConfig.for_mode(ExecutionMode.BASELINE))
    stats = machine.run(gw.trace)
    print(f"\n== {label} ==")
    print(
        f"cycles={stats.total_cycles:.0f}  "
        f"violations={stats.primary_violations}"
        f"+{stats.secondary_violations}  "
        f"failed={stats.breakdown_fractions()['failed']:.0%}"
    )
    print("top violated dependences (hardware profiler, Section 3.1):")
    print(machine.engine.profiler.report(pc_names=gw.recorder.pcs, n=4))
    return stats, machine.engine.profiler, gw.recorder.pcs


def main() -> None:
    options = EngineOptions.unoptimized()
    stats, profiler, pcs = measure(options, "unoptimized engine")
    first_cycles = stats.total_cycles

    applied = set()
    for step in range(1, 5):
        # Pick the fix for the most harmful still-present dependence.
        fix = None
        for dep in profiler.top(10):
            store_site = pcs.name(dep.store_pc) if dep.store_pc else ""
            for site, flag, description in FIXES:
                if site == store_site and flag not in applied:
                    fix = (flag, description, store_site)
                    break
            if fix:
                break
        if fix is None:
            print("\nNo more profiler-guided fixes available; stopping.")
            break
        flag, description, site = fix
        applied.add(flag)
        print(f"\n--> fix #{step}: {site} dominates; {description}")
        options = options.without(flag)
        stats, profiler, pcs = measure(options, f"after fix #{step}")

    print(
        f"\nTuning took execution time from {first_cycles:.0f} to "
        f"{stats.total_cycles:.0f} cycles "
        f"({first_cycles / stats.total_cycles:.2f}x)."
    )
    print("The residual failed cycles come from dependences the paper")
    print("also could not remove (page LSNs, log-space reservation);")
    print("sub-threads are what keep them cheap.")


if __name__ == "__main__":
    main()
